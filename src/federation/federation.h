// A miniature SkyQuery-style federation: several archive sites, each
// running its own LifeRaft instance, executing serial left-deep cross-match
// plans. Intermediate results are shipped from site to site (paper §3:
// "intermediate join results are shipped from database to database until
// all archives are cross-matched"); each site batches the sub-queries it
// receives independently (paper §6: "our solution allows individual sites
// in a cluster or federation to batch queries independently").
//
// The network is modeled with a per-object shipping cost; sites' virtual
// clocks advance independently, and a plan's latency is the sum of its
// per-hop processing and shipping times.

#ifndef LIFERAFT_FEDERATION_FEDERATION_H_
#define LIFERAFT_FEDERATION_FEDERATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/liferaft.h"
#include "query/query.h"
#include "util/status.h"

namespace liferaft::federation {

/// Network cost model for intermediate-result shipping.
struct NetworkModel {
  /// Per-hop latency (ms) regardless of payload.
  double hop_latency_ms = 80.0;
  /// Per-object transfer cost (ms) — SkyQuery ships full tuples.
  double per_object_ms = 0.05;

  TimeMs ShipCostMs(size_t objects) const {
    return hop_latency_ms + per_object_ms * static_cast<double>(objects);
  }
};

/// A serial left-deep cross-match plan: the query's seed objects are
/// cross-matched against archives[0], survivors against archives[1], etc.
struct CrossMatchPlan {
  query::QueryId query_id = 0;
  std::vector<std::string> archives;
  /// Seed objects (from the query's anchor archive or user list).
  std::vector<query::QueryObject> seed_objects;
  /// Match radius applied at every hop.
  double radius_arcsec = 3.0;
  query::Predicate predicate;
};

/// Result of one federated cross-match.
struct FederatedResult {
  query::QueryId query_id = 0;
  /// Objects surviving every hop (positions of the final archive's
  /// matches).
  std::vector<query::QueryObject> survivors;
  /// Total modeled latency: per-site batch time + network shipping.
  TimeMs total_latency_ms = 0.0;
  /// Objects shipped into each hop (for the data-movement accounting).
  std::vector<size_t> objects_per_hop;
};

/// The federation: named sites, each owning one archive.
class Federation {
 public:
  explicit Federation(NetworkModel network = {}) : network_(network) {}

  /// Registers a site. Fails if the name exists.
  Status AddSite(const std::string& name,
                 std::unique_ptr<core::LifeRaft> system);

  /// Site lookup (null if unknown).
  core::LifeRaft* site(const std::string& name);

  /// Executes a serial left-deep plan to completion. Each hop submits one
  /// cross-match query to the site and drains it; the hop's matches become
  /// the next hop's query objects.
  Result<FederatedResult> ExecutePlan(const CrossMatchPlan& plan);

  /// Coordinated execution of many plans (paper §6: "different sites can
  /// coordinate query execution order to maximize the batch size over all
  /// sites"): all plans advance in lock-step rounds — every plan's current
  /// hop is submitted to its site before any site is drained, so plans
  /// visiting the same site in the same round share each bucket read.
  /// Contrast with calling ExecutePlan per plan, where each plan's hops
  /// are batched alone. Results are identical either way; only the I/O
  /// cost and latency differ.
  Result<std::vector<FederatedResult>> ExecutePlansCoordinated(
      const std::vector<CrossMatchPlan>& plans);

  /// Total bucket reads across all sites since construction (for
  /// coordinated-vs-independent accounting).
  uint64_t TotalBucketReads() const;

  size_t num_sites() const { return sites_.size(); }

 private:
  NetworkModel network_;
  std::map<std::string, std::unique_ptr<core::LifeRaft>> sites_;
  uint64_t next_internal_id_ = 1u << 20;  // avoid user query-id collisions
};

}  // namespace liferaft::federation

#endif  // LIFERAFT_FEDERATION_FEDERATION_H_
