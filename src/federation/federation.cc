#include "federation/federation.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace liferaft::federation {

Status Federation::AddSite(const std::string& name,
                           std::unique_ptr<core::LifeRaft> system) {
  if (system == nullptr) {
    return Status::InvalidArgument("null site system");
  }
  auto [it, inserted] = sites_.emplace(name, std::move(system));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("site '" + name + "' already registered");
  }
  return Status::OK();
}

core::LifeRaft* Federation::site(const std::string& name) {
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : it->second.get();
}

Result<FederatedResult> Federation::ExecutePlan(const CrossMatchPlan& plan) {
  if (plan.archives.empty()) {
    return Status::InvalidArgument("plan has no archives");
  }
  if (plan.seed_objects.empty()) {
    return Status::InvalidArgument("plan has no seed objects");
  }
  for (const std::string& name : plan.archives) {
    if (sites_.count(name) == 0) {
      return Status::NotFound("unknown archive '" + name + "'");
    }
  }

  FederatedResult result;
  result.query_id = plan.query_id;
  std::vector<query::QueryObject> current = plan.seed_objects;

  for (const std::string& name : plan.archives) {
    if (current.empty()) break;  // nothing survived the previous hop
    result.objects_per_hop.push_back(current.size());

    // Ship intermediates to the site.
    result.total_latency_ms += network_.ShipCostMs(current.size());

    core::LifeRaft* site_system = sites_.at(name).get();
    query::CrossMatchQuery hop_query;
    hop_query.id = next_internal_id_++;
    hop_query.predicate = plan.predicate;
    hop_query.label = "federated:" + std::to_string(plan.query_id);
    hop_query.objects = std::move(current);

    TimeMs before = site_system->now_ms();
    LIFERAFT_RETURN_IF_ERROR(site_system->Submit(hop_query));

    // Drain this site and collect the hop's matches.
    std::vector<query::Match> hop_matches;
    auto drained = site_system->Drain([&](const core::BatchOutcome& batch) {
      for (const query::Match& m : batch.matches) {
        if (m.query_id == hop_query.id) hop_matches.push_back(m);
      }
    });
    if (!drained.ok()) return drained.status();
    result.total_latency_ms += site_system->now_ms() - before;

    // Matched archive objects become the next hop's query objects (their
    // positions travel in the Match records). A catalog object matched by
    // several query objects ships once.
    std::unordered_set<uint64_t> seen;
    std::vector<query::QueryObject> next;
    next.reserve(hop_matches.size());
    for (const query::Match& m : hop_matches) {
      if (!seen.insert(m.catalog_object_id).second) continue;
      next.push_back(query::MakeQueryObject(m.catalog_object_id, m.sky(),
                                            plan.radius_arcsec));
    }
    current = std::move(next);
  }
  // Survivors of the final hop.
  result.survivors = std::move(current);
  return result;
}

Result<std::vector<FederatedResult>> Federation::ExecutePlansCoordinated(
    const std::vector<CrossMatchPlan>& plans) {
  if (plans.empty()) {
    return Status::InvalidArgument("no plans to execute");
  }
  for (const CrossMatchPlan& plan : plans) {
    if (plan.archives.empty()) {
      return Status::InvalidArgument("plan has no archives");
    }
    if (plan.seed_objects.empty()) {
      return Status::InvalidArgument("plan has no seed objects");
    }
    for (const std::string& name : plan.archives) {
      if (sites_.count(name) == 0) {
        return Status::NotFound("unknown archive '" + name + "'");
      }
    }
  }

  struct PlanState {
    const CrossMatchPlan* plan;
    FederatedResult result;
    std::vector<query::QueryObject> current;
    size_t hop = 0;
    query::QueryId hop_query_id = 0;
  };
  std::vector<PlanState> states;
  states.reserve(plans.size());
  for (const CrossMatchPlan& plan : plans) {
    PlanState state;
    state.plan = &plan;
    state.result.query_id = plan.query_id;
    state.current = plan.seed_objects;
    states.push_back(std::move(state));
  }

  size_t max_hops = 0;
  for (const CrossMatchPlan& plan : plans) {
    max_hops = std::max(max_hops, plan.archives.size());
  }

  for (size_t round = 0; round < max_hops; ++round) {
    // Phase 1: every live plan submits its current hop to its site, so
    // co-located hops interleave in the same workload queues.
    std::set<std::string> touched_sites;
    std::map<std::string, TimeMs> site_start;
    for (PlanState& state : states) {
      if (state.hop >= state.plan->archives.size() ||
          state.current.empty()) {
        continue;
      }
      const std::string& site_name = state.plan->archives[state.hop];
      core::LifeRaft* site = sites_.at(site_name).get();
      state.result.objects_per_hop.push_back(state.current.size());
      state.result.total_latency_ms +=
          network_.ShipCostMs(state.current.size());

      query::CrossMatchQuery hop_query;
      hop_query.id = state.hop_query_id = next_internal_id_++;
      hop_query.predicate = state.plan->predicate;
      hop_query.label = "coordinated:" +
                        std::to_string(state.plan->query_id);
      hop_query.objects = std::move(state.current);
      if (touched_sites.insert(site_name).second) {
        site_start[site_name] = site->now_ms();
      }
      LIFERAFT_RETURN_IF_ERROR(site->Submit(hop_query));
    }
    if (touched_sites.empty()) break;

    // Phase 2: drain each touched site once; the shared batches serve all
    // co-round plans together. Route matches back by hop query id.
    std::map<query::QueryId, std::vector<query::QueryObject>> next_objects;
    std::map<query::QueryId, std::unordered_set<uint64_t>> seen;
    for (const std::string& site_name : touched_sites) {
      core::LifeRaft* site = sites_.at(site_name).get();
      std::map<query::QueryId, const PlanState*> by_hop_id;
      for (PlanState& state : states) {
        if (state.hop_query_id != 0) by_hop_id[state.hop_query_id] = &state;
      }
      auto drained = site->Drain([&](const core::BatchOutcome& batch) {
        for (const query::Match& m : batch.matches) {
          auto it = by_hop_id.find(m.query_id);
          if (it == by_hop_id.end()) continue;
          if (!seen[m.query_id].insert(m.catalog_object_id).second) {
            continue;
          }
          next_objects[m.query_id].push_back(query::MakeQueryObject(
              m.catalog_object_id, m.sky(), it->second->plan->radius_arcsec));
        }
      });
      if (!drained.ok()) return drained.status();
      TimeMs site_time = site->now_ms() - site_start[site_name];
      // Every plan that visited this site this round waits for the shared
      // drain (batch processing trades latency for shared I/O).
      for (PlanState& state : states) {
        if (state.hop < state.plan->archives.size() &&
            state.hop_query_id != 0 &&
            state.plan->archives[state.hop] == site_name) {
          state.result.total_latency_ms += site_time;
        }
      }
    }

    // Phase 3: advance plans.
    for (PlanState& state : states) {
      if (state.hop_query_id == 0) continue;
      auto it = next_objects.find(state.hop_query_id);
      state.current = it == next_objects.end()
                          ? std::vector<query::QueryObject>{}
                          : std::move(it->second);
      state.hop_query_id = 0;
      ++state.hop;
    }
  }

  std::vector<FederatedResult> results;
  results.reserve(states.size());
  for (PlanState& state : states) {
    state.result.survivors = std::move(state.current);
    results.push_back(std::move(state.result));
  }
  return results;
}

uint64_t Federation::TotalBucketReads() const {
  uint64_t total = 0;
  for (const auto& [_, site] : sites_) {
    total += site->catalog().store()->stats().bucket_reads;
  }
  return total;
}

}  // namespace liferaft::federation
