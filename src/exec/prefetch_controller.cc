#include "exec/prefetch_controller.h"

#include <algorithm>

namespace liferaft::exec {

Status PrefetchControllerConfig::Validate() const {
  if (max_depth == 0) {
    return Status::InvalidArgument("controller max_depth must be >= 1");
  }
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    return Status::InvalidArgument("controller ewma_alpha must be in (0, 1]");
  }
  if (shrink_threshold < grow_threshold) {
    return Status::InvalidArgument(
        "controller shrink_threshold must be >= grow_threshold");
  }
  if (shrink_threshold > 1.0 || grow_threshold < 0.0) {
    return Status::InvalidArgument(
        "controller thresholds must be within [0, 1]");
  }
  if (adjust_period == 0 || probe_period == 0) {
    return Status::InvalidArgument("controller periods must be >= 1");
  }
  return Status::OK();
}

PrefetchController::PrefetchController(PrefetchControllerConfig config)
    : config_(config),
      depth_(std::min(config.initial_depth, config.max_depth)) {}

void PrefetchController::Observe(const PrefetchFeedback& feedback) {
  ++stats_.steps;
  ++steps_since_change_;

  const uint32_t resolved = feedback.claims + feedback.cancels;
  const uint32_t stale = feedback.stale_claims + feedback.cancels;
  // Waste decays every step (most steps waste nothing), so a burst of
  // canceled-after-fetch bets stalls growth for a while and then ages out.
  waste_ewma_ = (1.0 - config_.ewma_alpha) * waste_ewma_ +
                config_.ewma_alpha * static_cast<double>(feedback.wasted_bytes);
  if (resolved > 0) {
    const double rate = static_cast<double>(stale) / resolved;
    stale_ewma_ = saw_resolution_
                      ? (1.0 - config_.ewma_alpha) * stale_ewma_ +
                            config_.ewma_alpha * rate
                      : rate;
    saw_resolution_ = true;
  }
  if (feedback.claims > 0) {
    const double hidden_per_claim = feedback.hidden_ms / feedback.claims;
    hidden_ewma_ = (1.0 - config_.ewma_alpha) * hidden_ewma_ +
                   config_.ewma_alpha * hidden_per_claim;
  }

  if (depth_ == 0) {
    // Fully off: nothing resolves, so no EWMA can recover on its own.
    // Periodically probe at depth 1; a still-bad predictor sends the probe
    // straight back down, a recovered one lets the grow rule climb.
    if (steps_since_change_ >= config_.probe_period) {
      depth_ = 1;
      // A probe starts from a clean slate — the evidence that sent depth
      // to 0 is from a regime the probe exists to re-test.
      stale_ewma_ = 0.0;
      waste_ewma_ = 0.0;
      saw_resolution_ = false;
      steps_since_change_ = 0;
      ++stats_.probes;
    }
    return;
  }

  // Burst rule: a step whose every resolved bet (2+) was stale is a
  // mispredict burst — shrink immediately, bypassing the damping period.
  const bool burst = resolved >= 2 && stale == resolved;
  if (!burst && steps_since_change_ < config_.adjust_period) return;

  if (saw_resolution_ && (burst || stale_ewma_ >= config_.shrink_threshold)) {
    --depth_;
    steps_since_change_ = 0;
    ++stats_.shrinks;
    return;
  }
  if (saw_resolution_ && depth_ < config_.max_depth &&
      stale_ewma_ <= config_.grow_threshold && hidden_ewma_ > 0.0) {
    // Cost veto: deeper bets are not worth it while dropped bets keep
    // burning physical bandwidth, however clean the stale rate looks.
    if (waste_ewma_ >
        static_cast<double>(config_.grow_max_wasted_bytes)) {
      ++stats_.grows_vetoed_on_waste;
      return;
    }
    ++depth_;
    steps_since_change_ = 0;
    ++stats_.grows;
  }
}

}  // namespace liferaft::exec
