// Feedback-driven controller for the cross-batch prefetch depth.
//
// The depth-K prefetch pipeline (exec::BatchPipeline) is a bet: every
// queued prefetch pins cache space and claims future disk-arm time on the
// strength of Scheduler::PeekNextBuckets' prediction. A fixed K is wrong
// in both directions — too shallow wastes hidable fetch latency when the
// predictor is accurate (steady saturated drains), too deep turns into
// wasted reads and pinned-garbage cache pressure when the prediction
// window churns (bursty arrivals, alpha near 1, adversarial traces). The
// CRAM lesson from the IP-lookup literature applies: cache policy has to
// be tuned to the access predictor, not bolted on generically.
//
// This controller closes the loop with two EWMAs fed by every pipeline
// step:
//  * stale rate — the fraction of resolved bets that paid off nothing: a
//    bet dropped because its bucket left the prediction window, or a claim
//    whose modeled residual was capped at the full fetch (queued so deep
//    the claim hid zero latency);
//  * hidden-ms per claim — the average fetch latency a claimed bet
//    actually hid behind compute.
// Depth shrinks while the stale EWMA is above `shrink_threshold` (a
// mispredict burst drives it there within a few steps) and grows — up to
// `max_depth` — while the stale EWMA is below `grow_threshold` AND hidden
// time per claim stays positive, i.e. while deeper bets demonstrably buy
// hidden latency. At depth 0 prefetching is fully off; after
// `probe_period` quiet steps the controller re-probes at depth 1 so a
// recovered predictor can climb back up. All inputs are virtual-clock
// quantities and step counts, so the trajectory is deterministic.
//
// Wasted bytes as a grow cost term: canceled-after-fetch bets have a
// direct physical cost (the bucket was read and thrown away —
// BucketCache's prefetch_wasted_bytes) that the stale *rate* alone can
// understate: a workload can keep the stale fraction under grow_threshold
// while every individual mispredict burns a full bucket of bandwidth. The
// controller therefore also tracks an EWMA of wasted bytes per step and
// vetoes growth while it exceeds `grow_max_wasted_bytes` — sustained
// waste stalls the climb even when the rate signal looks clean (shrinking
// stays governed by the rate/burst rules). A run with zero waste behaves
// exactly as before the term existed.
//
// The controller is deliberately standalone (no pipeline types): the unit
// tests drive it with scripted feedback sequences, and the pipeline is
// just one producer of PrefetchFeedback.

#ifndef LIFERAFT_EXEC_PREFETCH_CONTROLLER_H_
#define LIFERAFT_EXEC_PREFETCH_CONTROLLER_H_

#include <cstddef>
#include <cstdint>

#include "util/clock.h"
#include "util/status.h"

namespace liferaft::exec {

/// Tuning of the adaptive depth loop. Defaults favor stability: grow only
/// on clearly clean signal, shrink decisively on bursts.
struct PrefetchControllerConfig {
  /// Depth ceiling (>= 1); the floor is always 0 (prefetch off).
  size_t max_depth = 4;
  /// Starting depth, clamped to [0, max_depth].
  size_t initial_depth = 2;
  /// EWMA smoothing factor in (0, 1]: weight of the newest step's
  /// observation. Higher = faster reaction, noisier.
  double ewma_alpha = 0.35;
  /// Shrink depth while the stale-rate EWMA is at or above this.
  double shrink_threshold = 0.5;
  /// Grow depth only while the stale-rate EWMA is at or below this.
  double grow_threshold = 0.15;
  /// Steps between depth adjustments (damping against oscillation).
  size_t adjust_period = 2;
  /// Steps to sit at depth 0 before re-probing at depth 1.
  size_t probe_period = 8;
  /// Growth is vetoed while the wasted-bytes-per-step EWMA exceeds this
  /// (canceled-after-fetch physical bytes; see file comment). The default
  /// is a quarter of a modeled 4 MB bucket — sustained per-step waste of
  /// a bucket-sized read stalls the climb within a few steps, while
  /// isolated mispredicts decay below it. Zero waste never vetoes.
  uint64_t grow_max_wasted_bytes = 1024 * 1024;

  Status Validate() const;
};

/// One pipeline step's resolved prefetch bets.
struct PrefetchFeedback {
  /// Bets claimed by the batch that bet on them.
  uint32_t claims = 0;
  /// Claims whose residual was capped at the full fetch — physically
  /// reused, but the bet hid zero latency (stale by depth).
  uint32_t stale_claims = 0;
  /// Bets dropped because their bucket left the prediction window.
  uint32_t cancels = 0;
  /// Fetch latency hidden by this step's claims (virtual ms).
  TimeMs hidden_ms = 0.0;
  /// Physical bytes fetched by bets this step dropped without a claim
  /// (the cache's prefetch_wasted_bytes delta; deterministic — a dropped
  /// in-flight read is waited out, so whether it fetched is not a race).
  uint64_t wasted_bytes = 0;
};

/// Running tallies for reports and tests.
struct PrefetchControllerStats {
  uint64_t steps = 0;
  uint64_t shrinks = 0;
  uint64_t grows = 0;
  uint64_t probes = 0;
  /// Grow decisions vetoed by the wasted-bytes cost term alone.
  uint64_t grows_vetoed_on_waste = 0;
};

class PrefetchController {
 public:
  /// `config` must Validate(); the constructor clamps initial_depth.
  explicit PrefetchController(PrefetchControllerConfig config);

  /// Feeds one pipeline step's resolved bets and advances the depth
  /// decision. Call exactly once per step, including steps that resolved
  /// nothing (the probe timer counts them).
  void Observe(const PrefetchFeedback& feedback);

  /// Prefetch depth the pipeline should use for the next step.
  size_t depth() const { return depth_; }

  double stale_ewma() const { return stale_ewma_; }
  double hidden_per_claim_ewma() const { return hidden_ewma_; }
  double wasted_bytes_ewma() const { return waste_ewma_; }
  const PrefetchControllerStats& stats() const { return stats_; }
  const PrefetchControllerConfig& config() const { return config_; }

 private:
  PrefetchControllerConfig config_;
  size_t depth_;
  /// EWMA of the per-step stale fraction over steps that resolved bets.
  double stale_ewma_ = 0.0;
  /// EWMA of hidden ms per claim over steps that claimed bets.
  double hidden_ewma_ = 0.0;
  /// EWMA of wasted bytes per step, over every step (waste is usually 0).
  double waste_ewma_ = 0.0;
  bool saw_resolution_ = false;
  /// Steps since the last depth change (adjustment + probe damping).
  size_t steps_since_change_ = 0;
  PrefetchControllerStats stats_;
};

}  // namespace liferaft::exec

#endif  // LIFERAFT_EXEC_PREFETCH_CONTROLLER_H_
