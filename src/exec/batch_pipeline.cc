#include "exec/batch_pipeline.h"

#include <algorithm>
#include <cassert>

#include "join/hybrid.h"
#include "storage/bucket.h"

namespace liferaft::exec {

BatchPipeline::BatchPipeline(sched::Scheduler* scheduler,
                             query::WorkloadManager* manager,
                             join::JoinEvaluator* evaluator,
                             PipelineConfig config)
    : scheduler_(scheduler),
      manager_(manager),
      evaluator_(evaluator),
      cache_(evaluator != nullptr ? evaluator->cache() : nullptr),
      config_(config) {
  assert(scheduler_ != nullptr);
  assert(manager_ != nullptr);
  assert(evaluator_ != nullptr);
  assert(cache_ != nullptr);
  if (config_.prefetch_depth == 0) config_.prefetch_depth = 1;
  if (config_.adaptive_prefetch) {
    // The fixed depth seeds the controller; from there the feedback loop
    // owns it. The controller's documented precondition: the config must
    // validate (the engine/facade layers sanitize theirs; direct
    // PipelineConfig users get the same check here).
    config_.controller.initial_depth = config_.prefetch_depth;
    if (config_.controller.max_depth == 0) config_.controller.max_depth = 1;
    assert(config_.controller.Validate().ok());
    controller_ = std::make_unique<PrefetchController>(config_.controller);
  }
}

sched::CacheProbe BatchPipeline::MakeCacheProbe(TimeMs now) const {
  return [this, now](storage::BucketIndex b) {
    if (cache_->Contains(b)) return true;
    // A prefetched bucket whose modeled fetch has completed is as good as
    // resident for the metric's phi term.
    for (const PendingPrefetch& p : prefetches_) {
      if (p.bucket == b && p.done_ms <= now) return true;
    }
    return false;
  };
}

bool BatchPipeline::WillScan(storage::BucketIndex bucket,
                             uint64_t queue_objects) const {
  if (evaluator_->index() == nullptr) return true;
  return join::ChooseStrategy(evaluator_->hybrid_config(), queue_objects,
                              cache_->store().BucketObjectCount(bucket),
                              /*bucket_cached=*/true) ==
         join::JoinStrategy::kScan;
}

Result<std::optional<StepOutcome>> BatchPipeline::Step(TimeMs now) {
  // Adaptive mode reads the depth from the controller each step (0 = off
  // for now) and always drops bets that leave the prediction window — the
  // drop doubles as the controller's mispredict signal.
  const bool prefetch_on =
      config_.enable_prefetch || config_.adaptive_prefetch;
  const size_t depth = current_prefetch_depth();
  const bool drop_stale =
      config_.cancel_on_mispredict || config_.adaptive_prefetch;
  PrefetchFeedback feedback;

  const sched::CacheProbe cached = MakeCacheProbe(now);
  std::optional<storage::BucketIndex> pick =
      scheduler_->PickBucket(*manager_, now, cached);
  if (!pick.has_value()) return std::optional<StepOutcome>{};

  StepOutcome outcome;
  outcome.bucket = *pick;
  uint64_t restored_bytes = 0;
  std::vector<query::WorkloadEntry> entries =
      manager_->TakeBucket(*pick, &outcome.completed, &restored_bytes);

  // Claim the outstanding bet on this bucket if the batch is the one it
  // bet on: the bucket becomes resident (the evaluator sees a hit,
  // charging no T_b) and the clock is charged only the un-hidden tail of
  // the fetch. A bet on a different bucket stays pinned until its bucket
  // is scheduled (or, under cancel_on_mispredict, until it leaves the
  // prediction window below). Claim only when the evaluator will actually
  // scan — an index-probing batch would never touch the fetched bucket.
  // At depth > 1 a bet can still be queued behind the disk arm when its
  // bucket comes up (modeled residual >= its full T_b); waiting out that
  // whole queue would cost more than a plain foreground read, so the
  // charge is capped at T_b — as if the arm preempted the backlog and
  // fetched the bucket fresh — while the claim still reuses the physical
  // read. A capped claim hides nothing. (At depth 1 the residual is at
  // most T_b minus the previous batch's matching time, so the cap never
  // binds and PR 2 accounting is reproduced exactly.)
  auto bet = std::find_if(
      prefetches_.begin(), prefetches_.end(),
      [&](const PendingPrefetch& p) { return p.bucket == *pick; });
  if (bet != prefetches_.end()) {
    uint64_t queue_objects = 0;
    for (const query::WorkloadEntry& e : entries) {
      queue_objects += e.objects.size();
    }
    if (WillScan(*pick, queue_objects)) {
      outcome.fetch_residual_ms =
          std::min(std::max(0.0, bet->done_ms - now), bet->fetch_ms);
      const TimeMs hidden = bet->fetch_ms - outcome.fetch_residual_ms;
      prefetch_hidden_ms_ += hidden;
      ++feedback.claims;
      feedback.hidden_ms += hidden;
      // A capped claim (residual == full fetch) reused the physical read
      // but hid nothing — the bet was queued too deep: stale by depth.
      if (hidden <= 0.0) ++feedback.stale_claims;
      LIFERAFT_RETURN_IF_ERROR(cache_->Get(*pick).status());
      prefetches_.erase(bet);
    }
  }

  // Predict the next picks and start their physical reads now, overlapping
  // the join below; their modeled fetch times are assigned after the
  // evaluation, when this batch's disk phase is known. The prediction is
  // refreshed every live step — the window drives stale-bet cancelation
  // and eviction protection, and a stale window would protect yesterday's
  // predictions — and peeks deep enough to judge every outstanding bet
  // (after a controller shrink more bets can be pending than the depth
  // admits new ones, and a still-predicted bet must not read as a
  // mispredict just because the window got smaller).
  std::vector<storage::BucketIndex> newly_predicted;
  if (prefetch_on) {
    const size_t window_k = std::max(depth, prefetches_.size());
    std::vector<storage::BucketIndex> predicted =
        window_k > 0
            ? scheduler_->PeekNextBuckets(*manager_, now, cached, window_k)
            : std::vector<storage::BucketIndex>{};
    // Publish the window so eviction demotes predicted buckets last (an
    // empty window — depth scaled to 0 — restores plain LRU). Skipped
    // when unchanged: the cache locks every shard to swap windows.
    if (config_.prefetch_aware_eviction && predicted != last_window_) {
      cache_->SetPredictionWindow(predicted);
      last_window_ = predicted;
    }
    if (drop_stale) {
      // Drop bets that fell out of the prediction window: unpin so the
      // cache may evict them. The arm time already modeled for them is
      // not refunded — the bet was placed and lost.
      for (auto it = prefetches_.begin(); it != prefetches_.end();) {
        if (std::find(predicted.begin(), predicted.end(), it->bucket) ==
            predicted.end()) {
          cache_->CancelPrefetch(it->bucket);
          it = prefetches_.erase(it);
          ++feedback.cancels;
        } else {
          ++it;
        }
      }
    }
    for (storage::BucketIndex b : predicted) {
      if (prefetches_.size() + newly_predicted.size() >= depth) {
        break;
      }
      if (cache_->Contains(b)) continue;
      const bool already_queued =
          std::any_of(prefetches_.begin(), prefetches_.end(),
                      [&](const PendingPrefetch& p) { return p.bucket == b; });
      if (already_queued) continue;
      (void)cache_->PrefetchAsync(b);
      newly_predicted.push_back(b);
    }
  }

  Result<join::BatchResult> evaluated =
      evaluator_->EvaluateBucket(*pick, entries, config_.collect_matches);
  if (!evaluated.ok()) {
    // The bets issued above are not in prefetches_ yet (their modeled
    // times need this batch's disk phase); cancel them before surfacing
    // the error so no pin or inflight read is orphaned.
    for (storage::BucketIndex b : newly_predicted) {
      cache_->CancelPrefetch(b);
    }
    return evaluated.status();
  }
  join::BatchResult result = std::move(*evaluated);
  const storage::DiskModel& model = evaluator_->disk_model();
  // Fetching spilled workload segments back from disk is sequential I/O —
  // part of this batch's disk phase, so it also delays a prefetch's start.
  outcome.restore_ms =
      restored_bytes > 0 ? model.SequentialReadMs(restored_bytes) : 0.0;

  // Single disk arm: bets still in flight yield the arm to this batch's
  // foreground I/O — their completion slips by however long the arm was
  // busy here — and new fetches queue behind both the foreground phase and
  // every earlier bet, so fetches never overlap fetches on the clock.
  // The claimed residual does NOT slip the survivors: a bet queued behind
  // the claimed fetch already counted that fetch in its own done time
  // (slipping it again would double-charge the arm), and a bet queued
  // ahead of it finishes within the residual wait by construction. Only
  // the batch's own disk phase (scan I/O + spill restores) is arm time
  // the queue never anticipated. (Sums run left-to-right from `now`,
  // matching the pre-exec loop's expressions bit for bit.)
  const TimeMs unanticipated_disk_ms = result.io_ms + outcome.restore_ms;
  TimeMs arm_free_ms =
      now + outcome.fetch_residual_ms + result.io_ms + outcome.restore_ms;
  for (PendingPrefetch& p : prefetches_) {
    if (p.done_ms > now + outcome.fetch_residual_ms) {
      p.done_ms += unanticipated_disk_ms;
    }
    arm_free_ms = std::max(arm_free_ms, p.done_ms);
  }
  for (storage::BucketIndex b : newly_predicted) {
    const uint64_t bytes =
        static_cast<uint64_t>(cache_->store().BucketObjectCount(b)) *
        storage::Bucket::kBytesPerObject;
    const TimeMs fetch_ms = model.SequentialReadMs(bytes);
    arm_free_ms += fetch_ms;
    prefetches_.push_back(PendingPrefetch{b, arm_free_ms, fetch_ms});
  }

  outcome.strategy = result.strategy;
  outcome.cache_hit = result.cache_hit;
  outcome.cost_ms = result.cost_ms;
  outcome.io_ms = result.io_ms;
  outcome.cpu_ms = result.cpu_ms;
  outcome.counters = result.counters;
  outcome.matches = std::move(result.matches);
  // Feed the controller exactly once per completed step — steps that
  // resolved no bets still advance its probe/adjustment timers.
  if (controller_ != nullptr) controller_->Observe(feedback);
  return std::optional<StepOutcome>(std::move(outcome));
}

void BatchPipeline::CancelOutstandingPrefetches() {
  for (const PendingPrefetch& p : prefetches_) {
    cache_->CancelPrefetch(p.bucket);
  }
  prefetches_.clear();
  // End of run: no prediction is live, so stop protecting anything.
  if (config_.prefetch_aware_eviction) {
    cache_->SetPredictionWindow({});
    last_window_.clear();
  }
}

}  // namespace liferaft::exec
