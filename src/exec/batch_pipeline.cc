#include "exec/batch_pipeline.h"

#include <algorithm>
#include <cassert>

#include "join/hybrid.h"
#include "storage/async_io.h"
#include "storage/bucket.h"

namespace liferaft::exec {

BatchPipeline::BatchPipeline(sched::Scheduler* scheduler,
                             query::WorkloadManager* manager,
                             join::JoinEvaluator* evaluator,
                             PipelineConfig config,
                             const storage::StorageTopology* topology)
    : scheduler_(scheduler),
      manager_(manager),
      evaluator_(evaluator),
      cache_(evaluator != nullptr ? evaluator->cache() : nullptr),
      topology_(topology),
      config_(config) {
  assert(scheduler_ != nullptr);
  assert(manager_ != nullptr);
  assert(evaluator_ != nullptr);
  assert(cache_ != nullptr);
  if (config_.prefetch_depth == 0) config_.prefetch_depth = 1;
  if (config_.adaptive_prefetch) {
    // The fixed depth seeds every arm's controller; from there each arm's
    // feedback loop owns its own depth. The controller's documented
    // precondition: the config must validate (the engine/facade layers
    // sanitize theirs; direct PipelineConfig users get the same check
    // here).
    config_.controller.initial_depth = config_.prefetch_depth;
    if (config_.controller.max_depth == 0) config_.controller.max_depth = 1;
    assert(config_.controller.Validate().ok());
  }
  bucket_volumes_ = topology_ != nullptr ? topology_->num_volumes() : 1;
  const bool spill_arm = topology_ != nullptr && topology_->has_spill_arm();
  // The spill arm (when present) is the trailing entry: it carries no
  // bets and no controller, only telemetry for restore I/O.
  arms_.resize(bucket_volumes_ + (spill_arm ? 1 : 0));
  if (config_.adaptive_prefetch) {
    for (size_t v = 0; v < bucket_volumes_; ++v) {
      arms_[v].controller =
          std::make_unique<PrefetchController>(config_.controller);
    }
  }
}

sched::CacheProbe BatchPipeline::MakeCacheProbe(TimeMs now) const {
  return [this, now](storage::BucketIndex b) {
    if (cache_->Contains(b)) return true;
    // A prefetched bucket whose modeled fetch has completed is as good as
    // resident for the metric's phi term. A bucket only ever bets on its
    // own arm, but scanning every arm keeps the probe independent of the
    // placement map.
    for (const Arm& arm : arms_) {
      for (const PendingPrefetch& p : arm.bets) {
        if (p.bucket == b && p.done_ms <= now) return true;
      }
    }
    return false;
  };
}

bool BatchPipeline::WillScan(storage::BucketIndex bucket,
                             uint64_t queue_objects) const {
  if (evaluator_->index() == nullptr) return true;
  return join::ChooseStrategy(evaluator_->hybrid_config(), queue_objects,
                              cache_->store().BucketObjectCount(bucket),
                              /*bucket_cached=*/true) ==
         join::JoinStrategy::kScan;
}

size_t BatchPipeline::pending_prefetches() const {
  size_t total = 0;
  for (const Arm& arm : arms_) total += arm.bets.size();
  return total;
}

std::vector<storage::VolumeIoStats> BatchPipeline::volume_stats() const {
  std::vector<storage::VolumeIoStats> stats;
  stats.reserve(arms_.size());
  for (const Arm& arm : arms_) stats.push_back(arm.stats);
  return stats;
}

Result<std::optional<StepOutcome>> BatchPipeline::Step(TimeMs now) {
  if (async_reader_ != nullptr) return StepReal(now);
  // Adaptive mode reads each arm's depth from its controller (0 = off for
  // now) and always drops bets that leave the prediction window — the
  // drop doubles as that arm's controller's mispredict signal.
  const bool prefetch_on =
      config_.enable_prefetch || config_.adaptive_prefetch;
  const bool drop_stale =
      config_.cancel_on_mispredict || config_.adaptive_prefetch;
  // Prefetch bookkeeping spans only the bucket arms; the spill arm (the
  // trailing entry, when present) never carries bets.
  const size_t volumes = bucket_volumes_;
  std::vector<PrefetchFeedback> feedback(volumes);

  const sched::CacheProbe cached = MakeCacheProbe(now);
  std::optional<storage::BucketIndex> pick =
      scheduler_->PickBucket(*manager_, now, cached);
  if (!pick.has_value()) return std::optional<StepOutcome>{};

  StepOutcome outcome;
  outcome.bucket = *pick;
  outcome.volume = VolumeOf(*pick);
  Arm& pick_arm = arms_[outcome.volume];
  uint64_t restored_bytes = 0;
  std::vector<query::WorkloadEntry> entries =
      manager_->TakeBucket(*pick, &outcome.completed, &restored_bytes);

  // Claim the outstanding bet on this bucket if the batch is the one it
  // bet on: the bucket becomes resident (the evaluator sees a hit,
  // charging no T_b) and the clock is charged only the un-hidden tail of
  // the fetch. A bet on a different bucket stays pinned until its bucket
  // is scheduled (or, under cancel_on_mispredict, until it leaves the
  // prediction window below). Claim only when the evaluator will actually
  // scan — an index-probing batch would never touch the fetched bucket.
  // At depth > 1 a bet can still be queued behind its disk arm when its
  // bucket comes up (modeled residual >= its full T_b); waiting out that
  // whole queue would cost more than a plain foreground read, so the
  // charge is capped at T_b — as if the arm preempted the backlog and
  // fetched the bucket fresh — while the claim still reuses the physical
  // read. A capped claim hides nothing. (At depth 1 the residual is at
  // most T_b minus the previous batch's matching time, so the cap never
  // binds and PR 2 accounting is reproduced exactly.) A bucket bets only
  // on its own arm, so only pick_arm's queue can hold the bet.
  auto bet = std::find_if(
      pick_arm.bets.begin(), pick_arm.bets.end(),
      [&](const PendingPrefetch& p) { return p.bucket == *pick; });
  if (bet != pick_arm.bets.end()) {
    uint64_t queue_objects = 0;
    for (const query::WorkloadEntry& e : entries) {
      queue_objects += e.objects.size();
    }
    if (WillScan(*pick, queue_objects)) {
      outcome.fetch_residual_ms =
          std::min(std::max(0.0, bet->done_ms - now), bet->fetch_ms);
      const TimeMs hidden = bet->fetch_ms - outcome.fetch_residual_ms;
      prefetch_hidden_ms_ += hidden;
      pick_arm.stats.hidden_ms += hidden;
      ++pick_arm.stats.prefetch_claims;
      ++feedback[outcome.volume].claims;
      feedback[outcome.volume].hidden_ms += hidden;
      // A capped claim (residual == full fetch) reused the physical read
      // but hid nothing — the bet was queued too deep: stale by depth.
      if (hidden <= 0.0) ++feedback[outcome.volume].stale_claims;
      LIFERAFT_RETURN_IF_ERROR(cache_->Get(*pick).status());
      pick_arm.bets.erase(bet);
    }
  }

  // Predict the next picks and start their physical reads now, overlapping
  // the join below; their modeled fetch times are assigned after the
  // evaluation, when this batch's disk phase is known. The prediction is
  // refreshed every live step — the window drives stale-bet cancelation
  // and eviction protection, and a stale window would protect yesterday's
  // predictions — and peeks deep enough (a) to judge every outstanding bet
  // (after a controller shrink more bets can be pending than the depth
  // admits new ones, and a still-predicted bet must not read as a
  // mispredict just because the window got smaller) and (b) to surface
  // candidates for EVERY arm, so an arm the front of the prediction does
  // not touch still gets its fetches started.
  std::vector<std::vector<storage::BucketIndex>> newly_predicted(volumes);
  if (prefetch_on) {
    std::vector<size_t> want(volumes);
    for (size_t v = 0; v < volumes; ++v) {
      want[v] = std::max(current_prefetch_depth(v), arms_[v].bets.size());
    }
    std::vector<storage::BucketIndex> predicted =
        scheduler_->PeekNextBucketsCovering(
            *manager_, now, cached,
            [this](storage::BucketIndex b) { return VolumeOf(b); }, want);
    // Publish the window so eviction demotes predicted buckets last (an
    // empty window — every depth scaled to 0 — restores plain LRU).
    // Skipped when unchanged: the cache locks every shard to swap
    // windows.
    if (config_.prefetch_aware_eviction && predicted != last_window_) {
      cache_->SetPredictionWindow(predicted);
      last_window_ = predicted;
    }
    if (drop_stale) {
      // Drop bets that fell out of the prediction window: unpin so the
      // cache may evict them. The arm time already modeled for them is
      // not refunded — the bet was placed and lost — and any bytes the
      // dropped bet had physically fetched are charged to its arm's
      // controller as waste.
      for (size_t v = 0; v < volumes; ++v) {
        for (auto it = arms_[v].bets.begin(); it != arms_[v].bets.end();) {
          if (std::find(predicted.begin(), predicted.end(), it->bucket) ==
              predicted.end()) {
            feedback[v].wasted_bytes += cache_->CancelPrefetch(it->bucket);
            it = arms_[v].bets.erase(it);
            ++feedback[v].cancels;
          } else {
            ++it;
          }
        }
      }
    }
    // Fill every arm up to its depth, walking the global predicted
    // service order so each arm's queue stays in that order.
    for (storage::BucketIndex b : predicted) {
      const storage::VolumeIndex v = VolumeOf(b);
      if (arms_[v].bets.size() + newly_predicted[v].size() >=
          current_prefetch_depth(v)) {
        continue;
      }
      if (cache_->Contains(b)) continue;
      const bool already_queued = std::any_of(
          arms_[v].bets.begin(), arms_[v].bets.end(),
          [&](const PendingPrefetch& p) { return p.bucket == b; });
      if (already_queued) continue;
      (void)cache_->PrefetchAsync(b);
      newly_predicted[v].push_back(b);
    }
  }

  Result<join::BatchResult> evaluated =
      evaluator_->EvaluateBucket(*pick, entries, config_.collect_matches);
  if (!evaluated.ok()) {
    // The bets issued above are not in any arm's queue yet (their modeled
    // times need this batch's disk phase); cancel them before surfacing
    // the error so no pin or inflight read is orphaned.
    for (const std::vector<storage::BucketIndex>& arm_new : newly_predicted) {
      for (storage::BucketIndex b : arm_new) cache_->CancelPrefetch(b);
    }
    return evaluated.status();
  }
  join::BatchResult result = std::move(*evaluated);
  const storage::DiskModel& model = evaluator_->disk_model();
  // Fetching spilled workload segments back from disk is sequential I/O —
  // part of this batch's disk phase, so it also delays a prefetch's start
  // on the batch's arm. The spill file is run-scoped scratch, costed with
  // the default (evaluator) model rather than any volume's.
  outcome.restore_ms =
      restored_bytes > 0 ? model.SequentialReadMs(restored_bytes) : 0.0;

  // Independent arms: bets still in flight on the batch's own arm yield
  // that arm to the foreground I/O — their completion slips by however
  // long the arm was busy here — while bets on other arms run concurrently
  // with the whole batch and slip nothing. New fetches queue behind their
  // own arm only: behind this batch's foreground phase plus earlier bets
  // on the batch's arm, behind just the earlier bets elsewhere — fetches
  // never overlap fetches on the same arm's clock, and always overlap
  // across arms. The claimed residual does NOT slip the survivors: a bet
  // queued behind the claimed fetch already counted that fetch in its own
  // done time (slipping it again would double-charge the arm), and a bet
  // queued ahead of it finishes within the residual wait by construction.
  // Only the batch's own disk phase (scan I/O + spill restores) is arm
  // time the queue never anticipated. (Sums run left-to-right from `now`,
  // matching the pre-exec loop's expressions bit for bit on one volume.)
  //
  // With a dedicated spill arm, restore I/O moves off the bucket arm: the
  // batch still waits out the restore before its CPU phase (the join
  // needs the restored objects, so foreground_done_ms — and with it the
  // driver's clock — is charged identically), but the bucket arm frees as
  // soon as its own scan I/O ends, so bets neither slip by the restore
  // nor queue new fetches behind it.
  const bool restore_on_spill_arm =
      outcome.restore_ms > 0.0 && arms_.size() > bucket_volumes_;
  const TimeMs unanticipated_disk_ms =
      restore_on_spill_arm ? result.io_ms
                           : result.io_ms + outcome.restore_ms;
  const TimeMs foreground_done_ms =
      now + outcome.fetch_residual_ms + result.io_ms + outcome.restore_ms;
  const TimeMs pick_arm_done_ms =
      restore_on_spill_arm
          ? now + outcome.fetch_residual_ms + result.io_ms
          : foreground_done_ms;
  for (size_t v = 0; v < volumes; ++v) {
    Arm& arm = arms_[v];
    TimeMs arm_free_ms = v == outcome.volume ? pick_arm_done_ms : now;
    for (PendingPrefetch& p : arm.bets) {
      if (v == outcome.volume &&
          p.done_ms > now + outcome.fetch_residual_ms) {
        p.done_ms += unanticipated_disk_ms;
      }
      arm_free_ms = std::max(arm_free_ms, p.done_ms);
    }
    for (storage::BucketIndex b : newly_predicted[v]) {
      const uint64_t bytes = cache_->store().ModeledBucketBytes(
          b, config_.charge_encoded_bytes);
      const TimeMs fetch_ms = ModelFor(b).SequentialReadMs(bytes);
      arm_free_ms += fetch_ms;
      arm.bets.push_back(PendingPrefetch{b, arm_free_ms, fetch_ms});
      ++arm.stats.prefetch_issued;
      arm.stats.busy_ms += fetch_ms;
    }
    arm.stats.busy_until_ms = std::max(arm.stats.busy_until_ms, arm_free_ms);
  }

  // Per-arm telemetry for the batch's own arm: its foreground disk phase
  // (scan or probe I/O plus spill restores) and its consumed-work clock —
  // the completion clock always runs at or ahead of this (the batch's CPU
  // phase follows), so the run's max-over-arms makespan is well defined.
  pick_arm.stats.busy_ms += unanticipated_disk_ms;
  pick_arm.stats.consumed_until_ms =
      std::max(pick_arm.stats.consumed_until_ms, pick_arm_done_ms);
  if (result.strategy == join::JoinStrategy::kScan && !result.cache_hit) {
    ++pick_arm.stats.foreground_reads;
    pick_arm.stats.foreground_bytes += cache_->store().ModeledBucketBytes(
        *pick, config_.charge_encoded_bytes);
  }
  if (restore_on_spill_arm) {
    // The restore occupies the spill arm from the end of the batch's scan
    // phase to foreground_done_ms; restores serialize trivially since the
    // driver's clock passes foreground_done_ms before the next step.
    Arm& spill = arms_.back();
    spill.stats.busy_ms += outcome.restore_ms;
    ++spill.stats.foreground_reads;
    spill.stats.foreground_bytes += restored_bytes;
    spill.stats.consumed_until_ms =
        std::max(spill.stats.consumed_until_ms, foreground_done_ms);
    spill.stats.busy_until_ms =
        std::max(spill.stats.busy_until_ms, foreground_done_ms);
  }

  outcome.strategy = result.strategy;
  outcome.cache_hit = result.cache_hit;
  outcome.cost_ms = result.cost_ms;
  outcome.io_ms = result.io_ms;
  outcome.cpu_ms = result.cpu_ms;
  outcome.counters = result.counters;
  outcome.matches = std::move(result.matches);
  // Feed every arm's controller exactly once per completed step — steps
  // that resolved none of an arm's bets still advance its probe and
  // adjustment timers.
  for (size_t v = 0; v < volumes; ++v) {
    if (arms_[v].controller != nullptr) {
      arms_[v].controller->Observe(feedback[v]);
    }
  }
  return std::optional<StepOutcome>(std::move(outcome));
}

void BatchPipeline::SubmitRealBet(storage::BucketIndex b) {
  // The completion callback runs on THIS thread, inside the reader's
  // Poll()/Wait() — never concurrently — so real_bets_ needs no lock. The
  // ticket check drops a late completion whose bet was already canceled
  // (and possibly resubmitted under the same bucket index).
  const uint64_t ticket = async_reader_->SubmitRead(
      b, [this](const storage::AsyncReadCompletion& c) {
        auto it = real_bets_.find(c.index);
        if (it == real_bets_.end() || it->second.ticket != c.ticket) return;
        it->second.completed = true;
        it->second.status = c.status;
        it->second.bucket = c.bucket;
        it->second.latency_ms = c.latency_ms;
        it->second.bytes = c.bytes;
      });
  RealBet slot;
  slot.ticket = ticket;
  real_bets_[b] = std::move(slot);
}

TimeMs BatchPipeline::WaitForRealBet(storage::BucketIndex b) {
  const TimeMs t0 = wall_.NowMs();
  for (;;) {
    auto it = real_bets_.find(b);
    if (it == real_bets_.end() || it->second.completed) break;
    // Wait() parks until ANY completion arrives; completions for other
    // arms' bets delivered along the way are the overlap this mode
    // measures. The in_flight guard breaks a (should-be-impossible)
    // wait on a bet the queues no longer know about.
    if (async_reader_->Wait() == 0 && async_reader_->in_flight() == 0) break;
  }
  return wall_.NowMs() - t0;
}

Result<std::optional<StepOutcome>> BatchPipeline::StepReal(TimeMs now) {
  // The measured-time twin of Step: the same pick → prefetch → claim →
  // evaluate loop, but bets are REAL reads on the per-volume submission
  // queues and every I/O charge below is a wall-clock measurement, not
  // DiskModel arithmetic. There are no modeled arm clocks to maintain —
  // the physical queues ARE the arm serialization — so the whole
  // done_ms/slip block of the modeled path has no counterpart here.
  const bool prefetch_on =
      config_.enable_prefetch || config_.adaptive_prefetch;
  const bool drop_stale =
      config_.cancel_on_mispredict || config_.adaptive_prefetch;
  const size_t volumes = bucket_volumes_;
  std::vector<PrefetchFeedback> feedback(volumes);

  // Harvest whatever the queues finished since the last step so the
  // residency probe sees completed bets.
  async_reader_->Poll();

  const sched::CacheProbe cached = [this](storage::BucketIndex b) {
    if (cache_->Contains(b)) return true;
    auto it = real_bets_.find(b);
    return it != real_bets_.end() && it->second.completed &&
           it->second.status.ok();
  };
  std::optional<storage::BucketIndex> pick =
      scheduler_->PickBucket(*manager_, now, cached);
  if (!pick.has_value()) return std::optional<StepOutcome>{};

  StepOutcome outcome;
  outcome.bucket = *pick;
  outcome.volume = VolumeOf(*pick);
  Arm& pick_arm = arms_[outcome.volume];
  uint64_t restored_bytes = 0;
  std::vector<query::WorkloadEntry> entries =
      manager_->TakeBucket(*pick, &outcome.completed, &restored_bytes);

  uint64_t queue_objects = 0;
  for (const query::WorkloadEntry& e : entries) {
    queue_objects += e.objects.size();
  }
  const bool will_scan = WillScan(*pick, queue_objects);

  // Claim the bet on this bucket: block until its read completes (the
  // measured wait is the step's fetch residual), hand the bucket to the
  // cache so the evaluator sees a hit. Latency already hidden behind
  // earlier steps' compute is the claim's hidden time.
  auto bet_it = std::find_if(
      pick_arm.bets.begin(), pick_arm.bets.end(),
      [&](const PendingPrefetch& p) { return p.bucket == *pick; });
  if (bet_it != pick_arm.bets.end() && will_scan) {
    const TimeMs waited = WaitForRealBet(*pick);
    RealBet bet = std::move(real_bets_[*pick]);
    real_bets_.erase(*pick);
    pick_arm.bets.erase(bet_it);  // callbacks never touch arm queues
    if (!bet.status.ok()) return bet.status;
    cache_->Put(*pick, bet.bucket);
    cache_->mutable_store()->RecordPrefetchedRead(*bet.bucket);
    outcome.fetch_residual_ms = waited;
    const TimeMs hidden = std::max(0.0, bet.latency_ms - waited);
    prefetch_hidden_ms_ += hidden;
    pick_arm.stats.hidden_ms += hidden;
    pick_arm.stats.busy_ms += bet.latency_ms;
    ++pick_arm.stats.prefetch_claims;
    ++feedback[outcome.volume].claims;
    feedback[outcome.volume].hidden_ms += hidden;
    if (hidden <= 0.0) ++feedback[outcome.volume].stale_claims;
  } else if (will_scan && !cache_->Contains(*pick) &&
             real_bets_.find(*pick) == real_bets_.end()) {
    // Foreground miss: route it through the same submission queue as the
    // bets so it physically serializes behind them on the bucket's own
    // volume, and charge the measured blocked time.
    SubmitRealBet(*pick);
    const TimeMs waited = WaitForRealBet(*pick);
    RealBet fetched = std::move(real_bets_[*pick]);
    real_bets_.erase(*pick);
    if (!fetched.status.ok()) return fetched.status;
    cache_->Put(*pick, fetched.bucket);
    cache_->mutable_store()->RecordPrefetchedRead(*fetched.bucket);
    outcome.fetch_residual_ms = waited;
    pick_arm.stats.busy_ms += fetched.latency_ms;
    ++pick_arm.stats.foreground_reads;
    pick_arm.stats.foreground_bytes += fetched.bytes;
  }

  // Predict the next picks and submit their reads NOW, before the join
  // below — the queues work through them while the CPU matches, which is
  // the overlap real mode exists to measure. Window publishing and
  // stale-bet dropping mirror the modeled path; a dropped real bet is
  // simply forgotten (the ticket check discards its late completion) and
  // its fetched bytes, if any, are charged to the controller as waste.
  if (prefetch_on) {
    std::vector<size_t> want(volumes);
    for (size_t v = 0; v < volumes; ++v) {
      want[v] = std::max(current_prefetch_depth(v), arms_[v].bets.size());
    }
    std::vector<storage::BucketIndex> predicted =
        scheduler_->PeekNextBucketsCovering(
            *manager_, now, cached,
            [this](storage::BucketIndex b) { return VolumeOf(b); }, want);
    if (config_.prefetch_aware_eviction && predicted != last_window_) {
      cache_->SetPredictionWindow(predicted);
      last_window_ = predicted;
    }
    if (drop_stale) {
      for (size_t v = 0; v < volumes; ++v) {
        for (auto it = arms_[v].bets.begin(); it != arms_[v].bets.end();) {
          if (std::find(predicted.begin(), predicted.end(), it->bucket) ==
              predicted.end()) {
            auto rb = real_bets_.find(it->bucket);
            if (rb != real_bets_.end()) {
              if (rb->second.completed && rb->second.status.ok()) {
                feedback[v].wasted_bytes += rb->second.bytes;
              }
              real_bets_.erase(rb);
            }
            it = arms_[v].bets.erase(it);
            ++feedback[v].cancels;
          } else {
            ++it;
          }
        }
      }
    }
    for (storage::BucketIndex b : predicted) {
      const storage::VolumeIndex v = VolumeOf(b);
      if (arms_[v].bets.size() >= current_prefetch_depth(v)) continue;
      if (cache_->Contains(b)) continue;
      const bool already_queued = std::any_of(
          arms_[v].bets.begin(), arms_[v].bets.end(),
          [&](const PendingPrefetch& p) { return p.bucket == b; });
      if (already_queued) continue;
      SubmitRealBet(b);
      // Queue order only; the modeled completion fields stay zero.
      arms_[v].bets.push_back(PendingPrefetch{b, 0.0, 0.0});
      ++arms_[v].stats.prefetch_issued;
    }
  }

  Result<join::BatchResult> evaluated =
      evaluator_->EvaluateBucket(*pick, entries, config_.collect_matches);
  // On error the just-submitted bets stay pending in real_bets_; they hold
  // no cache pins, and teardown's CancelOutstandingPrefetches drains them.
  if (!evaluated.ok()) return evaluated.status();
  join::BatchResult result = std::move(*evaluated);
  // Spill restores happened physically inside TakeBucket (the spill file
  // read is real I/O on every path); the modeled price is kept for the
  // outcome's telemetry but no wall charge is added here — the driver's
  // wall clock already contains the blocked time.
  outcome.restore_ms =
      restored_bytes > 0
          ? evaluator_->disk_model().SequentialReadMs(restored_bytes)
          : 0.0;

  outcome.strategy = result.strategy;
  outcome.cache_hit = result.cache_hit;
  outcome.cost_ms = result.cost_ms;
  outcome.io_ms = result.io_ms;
  outcome.cpu_ms = result.cpu_ms;
  outcome.counters = result.counters;
  outcome.matches = std::move(result.matches);
  for (size_t v = 0; v < volumes; ++v) {
    if (arms_[v].controller != nullptr) {
      arms_[v].controller->Observe(feedback[v]);
    }
  }
  return std::optional<StepOutcome>(std::move(outcome));
}

void BatchPipeline::CancelOutstandingPrefetches() {
  for (Arm& arm : arms_) {
    if (async_reader_ == nullptr) {
      for (const PendingPrefetch& p : arm.bets) {
        cache_->CancelPrefetch(p.bucket);
      }
    }
    arm.bets.clear();
  }
  if (async_reader_ != nullptr) {
    // Real bets hold no cache pins. Forget them first (late completions
    // then fail the ticket lookup and drop), then drain the queues so no
    // worker still references the store when the caller tears down.
    real_bets_.clear();
    async_reader_->Drain();
  }
  // End of run: no prediction is live, so stop protecting anything.
  if (config_.prefetch_aware_eviction) {
    cache_->SetPredictionWindow({});
    last_window_.clear();
  }
}

}  // namespace liferaft::exec
