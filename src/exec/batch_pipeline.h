// The unified batch-execution pipeline: the paper's core scheduling loop —
// pick a bucket, prefetch the predicted next picks, claim a completed
// prefetch, evaluate the bucket's whole workload queue, account the
// virtual-clock I/O — extracted into one place so both virtual-time
// drivers (core::LifeRaft::ProcessNextBatch and sim::SimEngine's shared
// mode) execute the identical loop. Before this layer existed the loop was
// duplicated per driver and only the simulator had PR 2's prefetch
// pipelining; now every feature of the loop lands in both drivers for
// free.
//
// Depth-K prefetch: with prefetching enabled the pipeline keeps up to
// `prefetch_depth` predicted buckets in flight per disk arm
// (Scheduler::PeekNextBuckets supplies the predicted service order).
// Physical reads start immediately on the worker pool, overlapping the
// current batch's join compute; the *modeled* fetches serialize per arm —
// a prefetch's virtual completion time queues behind the current batch's
// disk phase (when they share the arm) and behind every earlier prefetch
// on its own arm, so no arm's clock ever overlaps two of its fetches. A
// batch that claims its predicted bucket pays only the un-hidden residual
// max(0, fetch_done - now), capped at the bucket's full T_b — a bet
// queued so deep behind its arm that waiting would exceed a fresh
// foreground read is charged as exactly that read (and hides nothing),
// though the physical bytes are still reused. The full fetch minus the
// charged residual is credited to prefetch_hidden_ms. At prefetch_depth
// == 1 with cancel-on-mispredict off and a single volume this reproduces
// the PR 2 engine pipeline tick-for-tick.
//
// Multi-volume topology (storage::StorageTopology): each volume is an
// independent disk arm with its own in-flight bet queue, its own modeled
// busy time, and — in adaptive mode — its own PrefetchController depth.
// Scheduler::PeekNextBucketsCovering peeks the prediction deep enough to
// surface candidates for every arm, so arms the front of the prediction
// does not touch still get their fetches started; fetches on different
// arms overlap both each other and the foreground batch's disk phase on
// the virtual clocks, which is where the multi-spindle makespan win comes
// from. A batch's foreground I/O contends only with its own bucket's arm:
// bets on other arms neither slip nor delay it. A topology with a
// dedicated spill arm (StorageTopologyConfig::spill_arm) contributes one
// extra trailing arm that carries no bets and absorbs spill-restore busy
// time, so restores stop contending with the restored bucket's own arm.
// With a null topology (or num_volumes == 1) every bucket maps to arm 0
// and the accounting reduces to the single-arm model byte for byte.
//
// Mispredictions: by default an unclaimed prefetch is held (pinned) until
// its bucket is eventually scheduled, its modeled completion slipping
// whenever the foreground batch needs its disk arm. With
// `cancel_on_mispredict` the pipeline instead drops queued prefetches that
// have fallen out of the scheduler's current prediction window, unpinning
// their buckets so the cache can evict them (the arm time already modeled
// for them is not refunded — the bet was placed and lost).
//
// Adaptive depth (PR 4, per-arm since the topology refactor): with
// `adaptive_prefetch` the fixed `prefetch_depth` becomes only the
// starting point — each arm's PrefetchController tracks that arm's
// stale-claim rate, hidden-ms per claim, and wasted prefetch bytes
// (EWMAs over the virtual clock) and walks the arm's depth between 0 and
// `controller.max_depth`: shrink on mispredict bursts, grow while deeper
// bets keep hiding latency and dropped bets are not burning bandwidth.
// Adaptive mode implies window-based cancelation (a shrunken window drops
// the now-out-of-scope bets, which is both the drain mechanism and the
// controller's mispredict signal). Still deterministic: controllers see
// only virtual quantities and step counts.
//
// Prefetch-aware eviction: each time the pipeline peeks the prediction
// window it publishes it to the cache (BucketCache::SetPredictionWindow),
// so eviction demotes predicted buckets last and the prefetcher stops
// evicting what it is about to fetch or claim. Opt out with
// `prefetch_aware_eviction = false` for A/B comparison.

#ifndef LIFERAFT_EXEC_BATCH_PIPELINE_H_
#define LIFERAFT_EXEC_BATCH_PIPELINE_H_

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/prefetch_controller.h"
#include "join/evaluator.h"
#include "query/workload.h"
#include "sched/scheduler.h"
#include "storage/bucket_cache.h"
#include "storage/topology.h"
#include "util/clock.h"
#include "util/status.h"

namespace liferaft::storage {
class AsyncReader;  // storage/async_io.h
}  // namespace liferaft::storage

namespace liferaft::exec {

/// Knobs of the unified loop.
struct PipelineConfig {
  /// Cross-batch prefetch pipelining (see file comment). Changes the
  /// schedule (prefetched buckets count as resident for phi) but stays
  /// deterministic and thread-count independent.
  bool enable_prefetch = false;
  /// Predicted picks kept in flight PER ARM (>= 1). Depth 1 on a single
  /// volume is the PR 2 pipeline.
  size_t prefetch_depth = 1;
  /// Drop queued prefetches that leave the scheduler's prediction window
  /// instead of holding them pinned until claimed.
  bool cancel_on_mispredict = false;
  /// Feedback-driven per-arm depth scaling between 0 and
  /// controller.max_depth (see file comment); prefetch_depth seeds every
  /// arm's starting depth. Implies window-based cancelation of stale bets.
  bool adaptive_prefetch = false;
  /// Tuning of the adaptive controllers (used when adaptive_prefetch).
  PrefetchControllerConfig controller;
  /// Publish the prediction window to the cache so eviction demotes
  /// predicted buckets last (BucketCache::SetPredictionWindow).
  bool prefetch_aware_eviction = true;
  /// Materialize match tuples (disable for scheduling-scale experiments).
  bool collect_matches = true;
  /// Price prefetch bets and foreground reads by the store's real encoded
  /// page bytes instead of the kBytesPerObject estimate (see
  /// JoinEvaluator::set_charge_encoded_bytes; keep the two in sync so bet
  /// fetch times match foreground fetch times). Off by default — v1/v2
  /// runs stay byte-identical.
  bool charge_encoded_bytes = false;
};

/// Everything one pipeline step produced; the driver advances its clock by
/// TotalAdvanceMs() and owns completion/match bookkeeping.
struct StepOutcome {
  storage::BucketIndex bucket = 0;
  /// The disk arm the batch's bucket lives on (0 without a topology).
  storage::VolumeIndex volume = 0;
  join::JoinStrategy strategy = join::JoinStrategy::kScan;
  /// True if the scan path found the bucket resident (phi(i) == 0).
  bool cache_hit = false;
  /// Evaluator cost of the batch (io_ms + cpu_ms).
  TimeMs cost_ms = 0.0;
  TimeMs io_ms = 0.0;
  TimeMs cpu_ms = 0.0;
  /// Un-hidden tail of a claimed prefetch, charged before the batch.
  TimeMs fetch_residual_ms = 0.0;
  /// Sequential I/O for workload segments restored from the spill file.
  TimeMs restore_ms = 0.0;
  join::JoinCounters counters;
  /// Queries whose last outstanding sub-query was in this batch.
  std::vector<query::QueryId> completed;
  /// Matches produced by this batch (all batch queries interleaved).
  std::vector<query::Match> matches;

  /// Total virtual time this step consumes.
  TimeMs TotalAdvanceMs() const {
    return fetch_residual_ms + cost_ms + restore_ms;
  }
};

/// One archive's pick→prefetch→claim→evaluate→account loop. The pipeline
/// borrows every component (nothing is owned) and keeps only the
/// per-arm prefetch bookkeeping as state; drivers own the completion
/// clock and call Step with their current virtual time.
class BatchPipeline {
 public:
  /// @param scheduler bucket scheduling policy (not owned)
  /// @param manager   workload queues (not owned)
  /// @param evaluator join evaluator layered over the bucket cache (not
  ///                  owned; supplies the cache, disk model, and hybrid
  ///                  config)
  /// @param topology  volume map with per-volume disk models (not owned;
  ///                  may be null = single volume using the evaluator's
  ///                  model)
  BatchPipeline(sched::Scheduler* scheduler, query::WorkloadManager* manager,
                join::JoinEvaluator* evaluator, PipelineConfig config,
                const storage::StorageTopology* topology = nullptr);

  /// Runs one scheduling step at virtual time `now`. Returns nullopt when
  /// no queue has pending work (outstanding prefetch bets stay pending —
  /// work may still arrive for them). With a real-I/O reader attached
  /// (AttachRealIo) this dispatches to the measured-time path instead of
  /// the DiskModel arithmetic.
  Result<std::optional<StepOutcome>> Step(TimeMs now);

  /// Switches the pipeline into real-I/O mode: prefetch bets and
  /// foreground misses are submitted to `reader`'s per-volume submission
  /// queues (storage/async_io.h) and the step's fetch_residual_ms carries
  /// the MEASURED wall time the step blocked on the queues, not a modeled
  /// quantity. The modeled Step path is untouched — a pipeline that never
  /// attaches a reader is bit-identical to one built before this API
  /// existed. Call before the first Step; `reader` must outlive the
  /// pipeline (or a CancelOutstandingPrefetches + AttachRealIo(nullptr)).
  void AttachRealIo(storage::AsyncReader* reader) { async_reader_ = reader; }
  bool real_io() const { return async_reader_ != nullptr; }

  /// Drops every outstanding prefetch bet on every arm (end of run /
  /// drain).
  void CancelOutstandingPrefetches();

  /// Virtual fetch time hidden behind compute by claimed prefetches,
  /// summed over all arms (per-arm split in volume_stats()).
  TimeMs prefetch_hidden_ms() const { return prefetch_hidden_ms_; }

  /// Arm `volume`'s adaptive controller, or null when adaptive_prefetch
  /// is off. The zero-arg form is the single-volume accessor (arm 0).
  const PrefetchController* controller(size_t volume) const {
    return arms_[volume].controller.get();
  }
  const PrefetchController* controller() const { return controller(0); }

  /// The depth the next Step will prefetch arm `volume` to (that arm's
  /// controller depth in adaptive mode, the fixed config depth
  /// otherwise), limited by the external depth cap. The zero-arg form
  /// reads arm 0.
  size_t current_prefetch_depth(size_t volume) const {
    const size_t raw = arms_[volume].controller != nullptr
                           ? arms_[volume].controller->depth()
                           : config_.prefetch_depth;
    return std::min(raw, depth_cap_);
  }
  size_t current_prefetch_depth() const { return current_prefetch_depth(0); }

  /// Caps every arm's next-step prefetch depth — adaptive or fixed — at
  /// `cap`. The default (SIZE_MAX) never binds; the serving engine drives
  /// this from the active QoS class's QosPrefetchConfig between steps.
  /// The cap limits how many NEW bets a step places; bets already in
  /// flight are untouched (the window-based stale drop drains them).
  void set_depth_cap(size_t cap) { depth_cap_ = cap; }
  size_t depth_cap() const { return depth_cap_; }

  /// Number of disk arms including the dedicated spill arm, if any.
  size_t num_volumes() const { return arms_.size(); }

  /// Arms that own buckets — and so can carry prefetch bets and a depth
  /// controller. One less than num_volumes() under a spill-arm topology.
  size_t bucket_volumes() const { return bucket_volumes_; }

  /// Per-arm I/O telemetry accumulated so far (index = volume).
  std::vector<storage::VolumeIoStats> volume_stats() const;

  /// Residency probe for the scheduler's phi term at time `now`: resident
  /// in cache, or bet on by a prefetch whose modeled fetch has completed —
  /// which steers the metric toward the bucket we bet on, making the
  /// prediction self-fulfilling.
  sched::CacheProbe MakeCacheProbe(TimeMs now) const;

  /// Per-call match materialization (core::LifeRaft's ProcessNextBatch
  /// exposes this per batch).
  void set_collect_matches(bool collect) { config_.collect_matches = collect; }

  /// Outstanding bets across all arms.
  size_t pending_prefetches() const;

 private:
  /// One outstanding prefetch bet.
  struct PendingPrefetch {
    storage::BucketIndex bucket;
    /// Virtual time at which the modeled fetch completes on its arm
    /// (queued behind the arm's foreground I/O and earlier prefetches).
    TimeMs done_ms;
    /// Full modeled fetch cost (T_b of the bucket), for hidden-time stats.
    TimeMs fetch_ms;
  };

  /// One disk arm: its outstanding bets in predicted service order (= that
  /// arm's queue order), its adaptive depth controller, and its telemetry.
  struct Arm {
    std::deque<PendingPrefetch> bets;
    /// Non-null iff config_.adaptive_prefetch.
    std::unique_ptr<PrefetchController> controller;
    storage::VolumeIoStats stats;
  };

  /// Completion-side record of one real-I/O bet: filled in by the
  /// submission-queue callback (which the reader invokes on THIS thread,
  /// inside Poll()/Wait() — never on a worker, so no locking). The ticket
  /// guards against a late completion of a dropped-and-resubmitted bet
  /// resurrecting under the same bucket index.
  struct RealBet {
    uint64_t ticket = 0;
    bool completed = false;
    Status status;
    std::shared_ptr<const storage::Bucket> bucket;
    /// Measured submit-to-completion wall latency.
    TimeMs latency_ms = 0.0;
    /// Physical bytes the read moved (encoded page size when known).
    uint64_t bytes = 0;
  };

  /// The measured-time twin of Step (see AttachRealIo).
  Result<std::optional<StepOutcome>> StepReal(TimeMs now);
  /// Submits bucket `b` to the reader and records the bet in real_bets_.
  void SubmitRealBet(storage::BucketIndex b);
  /// Blocks on the reader until real_bets_[b] completes, harvesting other
  /// arms' completions along the way; returns the measured wall wait.
  TimeMs WaitForRealBet(storage::BucketIndex b);

  storage::VolumeIndex VolumeOf(storage::BucketIndex b) const {
    return topology_ != nullptr ? topology_->VolumeOf(b) : 0;
  }
  /// Disk model for bucket `b`'s sequential fetches: its volume's model
  /// under a topology, the evaluator's global model otherwise.
  const storage::DiskModel& ModelFor(storage::BucketIndex b) const {
    return topology_ != nullptr ? topology_->ModelFor(b)
                                : evaluator_->disk_model();
  }
  /// True if the evaluator would take the scan path for this batch with
  /// the bucket resident — i.e. claiming the prefetch will actually be
  /// consumed. Under prefer_scan_when_cached=false a small batch probes
  /// the index and would never touch the fetched bucket (ChooseStrategy
  /// ignores residency in that config, so the evaluator reaches the same
  /// strategy whether or not we claim).
  bool WillScan(storage::BucketIndex bucket, uint64_t queue_objects) const;

  sched::Scheduler* scheduler_;
  query::WorkloadManager* manager_;
  join::JoinEvaluator* evaluator_;
  storage::BucketCache* cache_;
  const storage::StorageTopology* topology_;
  PipelineConfig config_;

  /// One entry per bucket volume (exactly one without a topology), plus a
  /// trailing bet-less entry for the spill arm when the topology
  /// dedicates one.
  std::vector<Arm> arms_;
  /// Arms [0, bucket_volumes_) own buckets; a spill arm, if present, is
  /// arms_[bucket_volumes_].
  size_t bucket_volumes_ = 1;
  /// External per-step depth limit (see set_depth_cap).
  size_t depth_cap_ = std::numeric_limits<size_t>::max();
  TimeMs prefetch_hidden_ms_ = 0.0;
  /// Last window published to the cache (skip republishing unchanged
  /// windows — the cache locks every shard to swap them).
  std::vector<storage::BucketIndex> last_window_;

  /// Real-I/O mode (null = modeled). Not owned.
  storage::AsyncReader* async_reader_ = nullptr;
  /// Outstanding real bets by bucket; arm.bets still carries the queue
  /// ORDER (with zeroed modeled times), this map carries the completions.
  std::unordered_map<storage::BucketIndex, RealBet> real_bets_;
  WallClock wall_;
};

}  // namespace liferaft::exec

#endif  // LIFERAFT_EXEC_BATCH_PIPELINE_H_
