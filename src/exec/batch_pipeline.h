// The unified batch-execution pipeline: the paper's core scheduling loop —
// pick a bucket, prefetch the predicted next picks, claim a completed
// prefetch, evaluate the bucket's whole workload queue, account the
// virtual-clock I/O — extracted into one place so both virtual-time
// drivers (core::LifeRaft::ProcessNextBatch and sim::SimEngine's shared
// mode) execute the identical loop. Before this layer existed the loop was
// duplicated per driver and only the simulator had PR 2's prefetch
// pipelining; now every feature of the loop lands in both drivers for
// free.
//
// Depth-K prefetch: with prefetching enabled the pipeline keeps up to
// `prefetch_depth` predicted buckets in flight (Scheduler::PeekNextBuckets
// supplies the predicted service order). Physical reads start immediately
// on the worker pool, overlapping the current batch's join compute; the
// *modeled* fetches serialize on a single disk arm — a prefetch's virtual
// completion time queues behind the current batch's disk phase and behind
// every earlier prefetch, so the virtual clock never overlaps two fetches.
// A batch that claims its predicted bucket pays only the un-hidden
// residual max(0, fetch_done - now), capped at the bucket's full T_b — a
// bet queued so deep behind the arm that waiting would exceed a fresh
// foreground read is charged as exactly that read (and hides nothing),
// though the physical bytes are still reused. The full fetch minus the
// charged residual is credited to prefetch_hidden_ms. At prefetch_depth
// == 1 with cancel-on-mispredict off this reproduces the PR 2 engine
// pipeline tick-for-tick.
//
// Mispredictions: by default an unclaimed prefetch is held (pinned) until
// its bucket is eventually scheduled, its modeled completion slipping
// whenever the foreground batch needs the disk arm. With
// `cancel_on_mispredict` the pipeline instead drops queued prefetches that
// have fallen out of the scheduler's current prediction window, unpinning
// their buckets so the cache can evict them (the arm time already modeled
// for them is not refunded — the bet was placed and lost).
//
// Adaptive depth (PR 4): with `adaptive_prefetch` the fixed
// `prefetch_depth` becomes only the starting point — a PrefetchController
// tracks the stale-claim rate and the hidden-ms per claim (EWMAs over the
// virtual clock) and walks the depth between 0 and `controller.max_depth`:
// shrink on mispredict bursts, grow while deeper bets keep hiding latency.
// Adaptive mode implies window-based cancelation (a shrunken window drops
// the now-out-of-scope bets, which is both the drain mechanism and the
// controller's mispredict signal). Still deterministic: the controller
// sees only virtual quantities and step counts.
//
// Prefetch-aware eviction: each time the pipeline peeks the prediction
// window it publishes it to the cache (BucketCache::SetPredictionWindow),
// so eviction demotes predicted buckets last and the prefetcher stops
// evicting what it is about to fetch or claim. Opt out with
// `prefetch_aware_eviction = false` for A/B comparison.

#ifndef LIFERAFT_EXEC_BATCH_PIPELINE_H_
#define LIFERAFT_EXEC_BATCH_PIPELINE_H_

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "exec/prefetch_controller.h"
#include "join/evaluator.h"
#include "query/workload.h"
#include "sched/scheduler.h"
#include "storage/bucket_cache.h"
#include "util/clock.h"
#include "util/status.h"

namespace liferaft::exec {

/// Knobs of the unified loop.
struct PipelineConfig {
  /// Cross-batch prefetch pipelining (see file comment). Changes the
  /// schedule (prefetched buckets count as resident for phi) but stays
  /// deterministic and thread-count independent.
  bool enable_prefetch = false;
  /// Predicted picks kept in flight (>= 1). Depth 1 is the PR 2 pipeline.
  size_t prefetch_depth = 1;
  /// Drop queued prefetches that leave the scheduler's prediction window
  /// instead of holding them pinned until claimed.
  bool cancel_on_mispredict = false;
  /// Feedback-driven depth scaling between 0 and controller.max_depth
  /// (see file comment); prefetch_depth seeds the controller's starting
  /// depth. Implies window-based cancelation of stale bets.
  bool adaptive_prefetch = false;
  /// Tuning of the adaptive controller (used when adaptive_prefetch).
  PrefetchControllerConfig controller;
  /// Publish the prediction window to the cache so eviction demotes
  /// predicted buckets last (BucketCache::SetPredictionWindow).
  bool prefetch_aware_eviction = true;
  /// Materialize match tuples (disable for scheduling-scale experiments).
  bool collect_matches = true;
};

/// Everything one pipeline step produced; the driver advances its clock by
/// TotalAdvanceMs() and owns completion/match bookkeeping.
struct StepOutcome {
  storage::BucketIndex bucket = 0;
  join::JoinStrategy strategy = join::JoinStrategy::kScan;
  /// True if the scan path found the bucket resident (phi(i) == 0).
  bool cache_hit = false;
  /// Evaluator cost of the batch (io_ms + cpu_ms).
  TimeMs cost_ms = 0.0;
  TimeMs io_ms = 0.0;
  TimeMs cpu_ms = 0.0;
  /// Un-hidden tail of a claimed prefetch, charged before the batch.
  TimeMs fetch_residual_ms = 0.0;
  /// Sequential I/O for workload segments restored from the spill file.
  TimeMs restore_ms = 0.0;
  join::JoinCounters counters;
  /// Queries whose last outstanding sub-query was in this batch.
  std::vector<query::QueryId> completed;
  /// Matches produced by this batch (all batch queries interleaved).
  std::vector<query::Match> matches;

  /// Total virtual time this step consumes.
  TimeMs TotalAdvanceMs() const {
    return fetch_residual_ms + cost_ms + restore_ms;
  }
};

/// One archive's pick→prefetch→claim→evaluate→account loop. The pipeline
/// borrows every component (nothing is owned) and keeps only the prefetch
/// bookkeeping as state; drivers own the clock and call Step with their
/// current virtual time.
class BatchPipeline {
 public:
  /// @param scheduler bucket scheduling policy (not owned)
  /// @param manager   workload queues (not owned)
  /// @param evaluator join evaluator layered over the bucket cache (not
  ///                  owned; supplies the cache, disk model, and hybrid
  ///                  config)
  BatchPipeline(sched::Scheduler* scheduler, query::WorkloadManager* manager,
                join::JoinEvaluator* evaluator, PipelineConfig config);

  /// Runs one scheduling step at virtual time `now`. Returns nullopt when
  /// no queue has pending work (outstanding prefetch bets stay pending —
  /// work may still arrive for them).
  Result<std::optional<StepOutcome>> Step(TimeMs now);

  /// Drops every outstanding prefetch bet (end of run / drain).
  void CancelOutstandingPrefetches();

  /// Virtual fetch time hidden behind compute by claimed prefetches.
  TimeMs prefetch_hidden_ms() const { return prefetch_hidden_ms_; }

  /// The adaptive controller, or null when adaptive_prefetch is off.
  const PrefetchController* controller() const { return controller_.get(); }

  /// The depth the next Step will prefetch to (the controller's current
  /// depth in adaptive mode, the fixed config depth otherwise).
  size_t current_prefetch_depth() const {
    return controller_ != nullptr ? controller_->depth()
                                  : config_.prefetch_depth;
  }

  /// Residency probe for the scheduler's phi term at time `now`: resident
  /// in cache, or bet on by a prefetch whose modeled fetch has completed —
  /// which steers the metric toward the bucket we bet on, making the
  /// prediction self-fulfilling.
  sched::CacheProbe MakeCacheProbe(TimeMs now) const;

  /// Per-call match materialization (core::LifeRaft's ProcessNextBatch
  /// exposes this per batch).
  void set_collect_matches(bool collect) { config_.collect_matches = collect; }

  size_t pending_prefetches() const { return prefetches_.size(); }

 private:
  /// One outstanding prefetch bet.
  struct PendingPrefetch {
    storage::BucketIndex bucket;
    /// Virtual time at which the modeled fetch completes (single disk
    /// arm: queued behind foreground I/O and earlier prefetches).
    TimeMs done_ms;
    /// Full modeled fetch cost (T_b of the bucket), for hidden-time stats.
    TimeMs fetch_ms;
  };

  /// True if the evaluator would take the scan path for this batch with
  /// the bucket resident — i.e. claiming the prefetch will actually be
  /// consumed. Under prefer_scan_when_cached=false a small batch probes
  /// the index and would never touch the fetched bucket (ChooseStrategy
  /// ignores residency in that config, so the evaluator reaches the same
  /// strategy whether or not we claim).
  bool WillScan(storage::BucketIndex bucket, uint64_t queue_objects) const;

  sched::Scheduler* scheduler_;
  query::WorkloadManager* manager_;
  join::JoinEvaluator* evaluator_;
  storage::BucketCache* cache_;
  PipelineConfig config_;

  /// Outstanding bets in predicted service order (= disk-arm order).
  std::deque<PendingPrefetch> prefetches_;
  TimeMs prefetch_hidden_ms_ = 0.0;
  /// Last window published to the cache (skip republishing unchanged
  /// windows — the cache locks every shard to swap them).
  std::vector<storage::BucketIndex> last_window_;
  /// Non-null iff config_.adaptive_prefetch.
  std::unique_ptr<PrefetchController> controller_;
};

}  // namespace liferaft::exec

#endif  // LIFERAFT_EXEC_BATCH_PIPELINE_H_
