// Indexed cross-match: probes the archive's B+tree spatial index once per
// workload object instead of scanning the bucket. This is the join path the
// hybrid strategy selects when a workload queue is small relative to its
// bucket (paper §3.4), and the only path SkyQuery's legacy execution uses.

#ifndef LIFERAFT_JOIN_INDEXED_JOIN_H_
#define LIFERAFT_JOIN_INDEXED_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "htm/range_set.h"
#include "join/merge_join.h"
#include "query/workload.h"
#include "storage/btree.h"

namespace liferaft::join {

/// Instrumentation for an indexed join.
struct IndexedJoinCounters {
  JoinCounters join;
  /// Index probes performed (one per workload object; each is a random
  /// I/O in the cost model).
  uint64_t probes = 0;
  /// Leaf pages touched across all probes.
  uint64_t leaves_visited = 0;

  /// Merges another slice's counters (keep in sync with the fields above —
  /// the parallel path aggregates per-slice counters through this).
  IndexedJoinCounters& operator+=(const IndexedJoinCounters& o) {
    join += o.join;
    probes += o.probes;
    leaves_visited += o.leaves_visited;
    return *this;
  }
};

/// Cross-matches a workload batch via index probes, restricted to the
/// bucket's HTM range `restrict_to` (sub-queries are per-bucket even on the
/// indexed path, so a query object overlapping two buckets is matched
/// exactly once per bucket). Appends matches to `*out` (skipped when
/// null). Generic over the output vector for the same reason as
/// MergeCrossMatchInto: parallel slices append into per-worker
/// arena-backed vectors.
template <typename MatchVec>
IndexedJoinCounters IndexedCrossMatchInto(
    const storage::BTreeIndex& index, const htm::IdRange& restrict_to,
    std::span<const query::WorkloadEntry> batch, MatchVec* out) {
  IndexedJoinCounters counters;
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.join.workload_objects;
      ++counters.probes;
      for (const htm::IdRange& r : qo.htm_ranges.ranges()) {
        if (!r.Overlaps(restrict_to)) continue;
        htm::HtmId lo = std::max(r.lo, restrict_to.lo);
        htm::HtmId hi = std::min(r.hi, restrict_to.hi);
        auto stats = index.RangeScan(
            lo, hi, [&](const storage::CatalogObject& co) {
              ++counters.join.candidates_tested;
              double sep = 0.0;
              if (!WithinRadius(qo, co, &sep)) return;
              ++counters.join.spatial_matches;
              if (!entry.predicate.Matches(co)) return;
              ++counters.join.output_matches;
              if (out != nullptr) {
                out->push_back(query::Match{entry.query_id, qo.id,
                                            co.object_id, sep, co.ra_deg,
                                            co.dec_deg});
              }
            });
        counters.leaves_visited += stats.leaves_visited;
      }
    }
  }
  return counters;
}

/// Columnar form: probes one page's sorted HTM-id column — the per-page
/// mini-index — with the same per-object probe accounting, scanning the
/// position/attribute columns zero-copy. No B+tree leaves exist on this
/// path, so leaves_visited stays 0; candidate order and match bytes are
/// identical to the B+tree probe restricted to the same bucket.
template <typename MatchVec>
IndexedJoinCounters IndexedCrossMatchInto(
    const storage::ColumnarBucketView& view, const htm::IdRange& restrict_to,
    std::span<const query::WorkloadEntry> batch, MatchVec* out) {
  IndexedJoinCounters counters;
  const std::span<const Vec3> pos = view.positions();
  const std::span<const double> ra = view.ra();
  const std::span<const double> dec = view.dec();
  const std::span<const float> mag = view.mag();
  const std::span<const float> color = view.color();
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.join.workload_objects;
      ++counters.probes;
      for (const htm::IdRange& r : qo.htm_ranges.ranges()) {
        if (!r.Overlaps(restrict_to)) continue;
        htm::HtmId lo = std::max(r.lo, restrict_to.lo);
        htm::HtmId hi = std::min(r.hi, restrict_to.hi);
        const auto [first, last] = view.EqualRange(lo, hi);
        for (size_t i = first; i < last; ++i) {
          ++counters.join.candidates_tested;
          double sep = 0.0;
          if (!WithinRadius(qo, pos[i], &sep)) continue;
          ++counters.join.spatial_matches;
          if (!entry.predicate.Matches(mag[i], color[i])) continue;
          ++counters.join.output_matches;
          if (out != nullptr) {
            out->push_back(query::Match{entry.query_id, qo.id,
                                        view.object_id(i), sep, ra[i],
                                        dec[i]});
          }
        }
      }
    }
  }
  return counters;
}

/// The std::vector instantiation of IndexedCrossMatchInto.
IndexedJoinCounters IndexedCrossMatch(
    const storage::BTreeIndex& index, const htm::IdRange& restrict_to,
    std::span<const query::WorkloadEntry> batch,
    std::vector<query::Match>* out);

}  // namespace liferaft::join

#endif  // LIFERAFT_JOIN_INDEXED_JOIN_H_
