// The Join Evaluator (paper §4): receives the batch the scheduler
// dispatched for one bucket, selects the hybrid join strategy, pulls the
// bucket through the Bucket Cache (scan path) or probes the spatial index
// (indexed path), runs the cross-match, and reports both the matches and
// the modeled cost of the batch.

#ifndef LIFERAFT_JOIN_EVALUATOR_H_
#define LIFERAFT_JOIN_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "join/hybrid.h"
#include "join/indexed_join.h"
#include "join/merge_join.h"
#include "query/workload.h"
#include "storage/btree.h"
#include "storage/bucket_cache.h"
#include "storage/disk_model.h"
#include "storage/topology.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace liferaft::join {

/// Outcome of evaluating one bucket batch.
struct BatchResult {
  JoinStrategy strategy = JoinStrategy::kScan;
  /// True if the scan path found the bucket resident (phi(i) == 0).
  bool cache_hit = false;
  /// Modeled execution time of the batch (T_b + T_m terms, or probe costs).
  /// Always io_ms + cpu_ms.
  TimeMs cost_ms = 0.0;
  /// Disk-busy portion of cost_ms: T_b on a scan miss (0 on a hit) or the
  /// probe I/O of the indexed path. The prefetch pipeline must not overlap
  /// another fetch with this interval (one disk arm in the cost model).
  TimeMs io_ms = 0.0;
  /// In-memory matching portion (the T_m terms); the next bucket's fetch
  /// can hide behind it.
  TimeMs cpu_ms = 0.0;
  JoinCounters counters;
  /// Matches of all queries in the batch, interleaved.
  std::vector<query::Match> matches;
};

/// How a per-query (non-shared) unit is executed.
enum class PerQueryMode {
  kNoShareScan,  ///< read each bucket straight from the store and scan
  kIndexProbes,  ///< SkyQuery legacy: spatial-index probes only
};

/// One admitted query's per-bucket sub-queries, evaluated independently of
/// the shared cache and of every other query (the NoShare / IndexOnly
/// baselines of paper §5).
struct PerQueryWork {
  query::QueryId query_id = 0;
  TimeMs arrival_ms = 0.0;
  query::Predicate predicate;
  /// Not owned; must stay valid until evaluation returns.
  const std::vector<query::BucketWorkload>* workloads = nullptr;
};

/// Modeled outcome of one per-query unit.
struct PerQueryResult {
  TimeMs cost_ms = 0.0;
  uint64_t matches = 0;
};

/// Aggregate evaluator statistics across a run.
struct EvaluatorStats {
  uint64_t batches = 0;
  uint64_t scan_batches = 0;
  uint64_t indexed_batches = 0;
  uint64_t index_probes = 0;
  TimeMs total_cost_ms = 0.0;
};

/// Executes bucket batches. The scheduler loop stays single-threaded, as in
/// the paper; when a thread pool is attached, the join work *within* one
/// batch is fanned across workers by slicing the workload entries, and the
/// slices are merged back in entry order. Strategy choice, cache traffic,
/// modeled cost, counters, and match order are byte-identical to the
/// single-threaded path, so scheduling and the virtual clock stay
/// deterministic.
///
/// Match arenas: with a pool attached (and use_match_arenas on, the
/// default), each parallel slice collects its match tuples into the
/// executing worker's bump arena (util::Arena via ThreadPool::CurrentArena)
/// instead of the shared heap; the owner merges the slices in order and
/// resets every arena at the next batch boundary. This removes allocator
/// contention from the match fan-out without changing a single byte of
/// output — the off switch exists to prove exactly that (and for A/B
/// benchmarking).
class JoinEvaluator {
 public:
  /// @param cache  bucket cache layered over the archive's store (not
  ///               owned)
  /// @param index  spatial index; may be null, which forces the scan path
  /// @param model  disk cost model used to charge virtual time
  /// @param config hybrid strategy configuration
  JoinEvaluator(storage::BucketCache* cache, const storage::BTreeIndex* index,
                storage::DiskModel model, HybridConfig config);

  /// Evaluates the batch of workload entries against bucket `bucket`.
  /// `collect_matches` can be disabled for scheduling-only experiments
  /// where match tuples would only burn memory.
  Result<BatchResult> EvaluateBucket(
      storage::BucketIndex bucket,
      const std::vector<query::WorkloadEntry>& batch,
      bool collect_matches = true);

  /// Evaluates a window of per-query units in `window` order. Queries are
  /// embarrassingly parallel here — each touches only its own buckets (read
  /// store-direct, no shared cache) or the immutable index — so with a pool
  /// attached they fan out one task per query; per-query costs, counters,
  /// and I/O charges are merged back in window (= arrival) order, making
  /// the results byte-identical to evaluating the window serially.
  /// `collect_matches` mirrors EvaluateBucket (tuples are materialized then
  /// discarded by per-query callers; counts are always exact).
  Result<std::vector<PerQueryResult>> EvaluatePerQueryWindow(
      PerQueryMode mode, const std::vector<PerQueryWork>& window,
      bool collect_matches = false);

  /// True if the bucket is resident in cache (the metric's phi term).
  bool IsCached(storage::BucketIndex bucket) const {
    return cache_->Contains(bucket);
  }

  /// Attaches a worker pool (not owned; may be null to restore serial
  /// execution). The pool must outlive the evaluator's last EvaluateBucket.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  /// Per-worker match arenas for the parallel paths (no effect without a
  /// pool). Off = every slice allocates match storage from the shared heap,
  /// byte-identical results either way.
  void set_use_match_arenas(bool use) { use_match_arenas_ = use; }
  bool use_match_arenas() const { return use_match_arenas_; }

  /// Per-worker arenas for transient I/O scratch: the parallel NoShare
  /// path passes the executing worker's arena into the store's bucket
  /// reads (ReadBucketForPrefetchScratch), so page decode buffers stop
  /// touching the heap. Dispatch-scoped scratch only — results are
  /// byte-identical on or off.
  void set_use_io_arenas(bool use) { use_io_arenas_ = use; }
  bool use_io_arenas() const { return use_io_arenas_; }

  /// Attaches the multi-volume topology (not owned; may be null = single
  /// volume). A bucket's sequential T_b is then charged from its volume's
  /// disk model — scan fetches in shared mode and NoShare full reads —
  /// while CPU matching (T_m) and index-probe costs stay on the global
  /// model (probes traverse the index, not a data volume). With a uniform
  /// topology every charge is identical to the global model's.
  void set_topology(const storage::StorageTopology* topology) {
    topology_ = topology;
  }
  const storage::StorageTopology* topology() const { return topology_; }

  /// When on, T_b charges use the store's real encoded page size instead
  /// of the kBytesPerObject estimate (no-op on stores without encoded
  /// pages). Off by default so v1/v2 runs stay byte-identical; turn on to
  /// let smaller columnar pages actually shrink modeled fetch time.
  void set_charge_encoded_bytes(bool on) { charge_encoded_bytes_ = on; }
  bool charge_encoded_bytes() const { return charge_encoded_bytes_; }

  const storage::DiskModel& disk_model() const { return model_; }
  const HybridConfig& hybrid_config() const { return config_; }
  /// The spatial index (null forces the scan path); exec::BatchPipeline
  /// consults it to predict whether a batch will claim a prefetched bucket.
  const storage::BTreeIndex* index() const { return index_; }
  const EvaluatorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvaluatorStats{}; }
  storage::BucketCache* cache() { return cache_; }

 private:
  /// Disk model for bucket `b`'s sequential reads (see set_topology).
  const storage::DiskModel& SequentialModelFor(
      storage::BucketIndex b) const {
    return topology_ != nullptr ? topology_->ModelFor(b) : model_;
  }

  /// Bytes T_b is charged for moving bucket `b` (see
  /// set_charge_encoded_bytes).
  uint64_t ModeledBytes(storage::BucketIndex b) const {
    return cache_->store().ModeledBucketBytes(b, charge_encoded_bytes_);
  }

  storage::BucketCache* cache_;
  const storage::BTreeIndex* index_;
  storage::DiskModel model_;
  HybridConfig config_;
  const storage::StorageTopology* topology_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
  bool use_match_arenas_ = true;
  bool use_io_arenas_ = true;
  bool charge_encoded_bytes_ = false;
  EvaluatorStats stats_;
};

}  // namespace liferaft::join

#endif  // LIFERAFT_JOIN_EVALUATOR_H_
