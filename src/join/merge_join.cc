#include "join/merge_join.h"

#include "geom/vec3.h"

namespace liferaft::join {

bool WithinRadius(const query::QueryObject& qo,
                  const storage::CatalogObject& co, double* sep_arcsec) {
  return WithinRadius(qo, co.pos, sep_arcsec);
}

bool WithinRadius(const query::QueryObject& qo, const Vec3& pos,
                  double* sep_arcsec) {
  double sep = AngleBetween(qo.pos, pos) * kRadToDeg * kArcsecPerDeg;
  if (sep_arcsec != nullptr) *sep_arcsec = sep;
  return sep <= qo.radius_arcsec;
}

JoinCounters MergeCrossMatch(const storage::Bucket& bucket,
                             std::span<const query::WorkloadEntry> batch,
                             std::vector<query::Match>* out) {
  return MergeCrossMatchInto(bucket, batch, out);
}

}  // namespace liferaft::join
