#include "join/merge_join.h"

#include "geom/vec3.h"

namespace liferaft::join {

bool WithinRadius(const query::QueryObject& qo,
                  const storage::CatalogObject& co, double* sep_arcsec) {
  double sep = AngleBetween(qo.pos, co.pos) * kRadToDeg * kArcsecPerDeg;
  if (sep_arcsec != nullptr) *sep_arcsec = sep;
  return sep <= qo.radius_arcsec;
}

JoinCounters MergeCrossMatch(const storage::Bucket& bucket,
                             std::span<const query::WorkloadEntry> batch,
                             std::vector<query::Match>* out) {
  JoinCounters counters;
  const htm::IdRange bucket_range = bucket.range();
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.workload_objects;
      for (const htm::IdRange& r : qo.htm_ranges.ranges()) {
        if (!r.Overlaps(bucket_range)) continue;
        htm::HtmId lo = std::max(r.lo, bucket_range.lo);
        htm::HtmId hi = std::min(r.hi, bucket_range.hi);
        for (const storage::CatalogObject& co :
             bucket.ObjectsInRange(lo, hi)) {
          ++counters.candidates_tested;
          double sep = 0.0;
          if (!WithinRadius(qo, co, &sep)) continue;
          ++counters.spatial_matches;
          if (!entry.predicate.Matches(co)) continue;
          ++counters.output_matches;
          if (out != nullptr) {
            out->push_back(query::Match{entry.query_id, qo.id, co.object_id,
                                        sep, co.ra_deg, co.dec_deg});
          }
        }
      }
    }
  }
  return counters;
}

}  // namespace liferaft::join
