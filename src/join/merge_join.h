// Non-indexed cross-match of one bucket against its workload queue
// (paper §3.1): objects on both sides are sorted by HTM ID; the join is a
// simultaneous sweep that, for each workload object's bounding range, visits
// the bucket objects inside the range and applies the exact angular-distance
// test. Query-specific predicates are applied to the output tuples that
// succeed in the spatial join.

#ifndef LIFERAFT_JOIN_MERGE_JOIN_H_
#define LIFERAFT_JOIN_MERGE_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "query/workload.h"
#include "storage/bucket.h"

namespace liferaft::join {

/// Per-join instrumentation.
struct JoinCounters {
  /// Workload objects processed (the |W| the cost model charges T_m for).
  uint64_t workload_objects = 0;
  /// Candidate pairs that reached the exact distance test.
  uint64_t candidates_tested = 0;
  /// Pairs within the error radius (before predicates).
  uint64_t spatial_matches = 0;
  /// Pairs surviving predicates (reported matches).
  uint64_t output_matches = 0;

  /// Merges another slice's counters (keep in sync with the fields above —
  /// the parallel path aggregates per-slice counters through this).
  JoinCounters& operator+=(const JoinCounters& o) {
    workload_objects += o.workload_objects;
    candidates_tested += o.candidates_tested;
    spatial_matches += o.spatial_matches;
    output_matches += o.output_matches;
    return *this;
  }
};

/// Exact refinement test shared by all join strategies: true iff the
/// archive object lies within the query object's error radius.
bool WithinRadius(const query::QueryObject& qo,
                  const storage::CatalogObject& co, double* sep_arcsec);

/// Position-only form for the columnar scan path: same formula, same
/// bits — the Vec3 comes from the same SkyToUnitVector(ra, dec) the row
/// decode runs.
bool WithinRadius(const query::QueryObject& qo, const Vec3& pos,
                  double* sep_arcsec);

/// Zero-copy sweep over one columnar page: binary-searches the decoded id
/// column per workload range, then walks the position/attribute column
/// spans in place. No CatalogObject is materialized on this path — match
/// output is built straight from the columns — so the only per-scan
/// allocation is the output vector (arena-backed in the parallel
/// evaluator). Candidate order, counters, and match bytes are identical
/// to the row sweep below by construction.
template <typename MatchVec>
JoinCounters MergeCrossMatchInto(const storage::ColumnarBucketView& view,
                                 std::span<const query::WorkloadEntry> batch,
                                 MatchVec* out) {
  JoinCounters counters;
  const htm::IdRange bucket_range = view.range();
  const std::span<const Vec3> pos = view.positions();
  const std::span<const double> ra = view.ra();
  const std::span<const double> dec = view.dec();
  const std::span<const float> mag = view.mag();
  const std::span<const float> color = view.color();
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.workload_objects;
      for (const htm::IdRange& r : qo.htm_ranges.ranges()) {
        if (!r.Overlaps(bucket_range)) continue;
        htm::HtmId lo = std::max(r.lo, bucket_range.lo);
        htm::HtmId hi = std::min(r.hi, bucket_range.hi);
        const auto [first, last] = view.EqualRange(lo, hi);
        for (size_t i = first; i < last; ++i) {
          ++counters.candidates_tested;
          double sep = 0.0;
          if (!WithinRadius(qo, pos[i], &sep)) continue;
          ++counters.spatial_matches;
          if (!entry.predicate.Matches(mag[i], color[i])) continue;
          ++counters.output_matches;
          if (out != nullptr) {
            out->push_back(query::Match{entry.query_id, qo.id,
                                        view.object_id(i), sep, ra[i],
                                        dec[i]});
          }
        }
      }
    }
  }
  return counters;
}

/// Cross-matches every entry of a bucket's workload batch against the
/// bucket via sorted-range sweep, appending matches to `*out` (skipped
/// when null). Entries are processed in order and touch no shared state,
/// so disjoint slices of a batch may run on different threads and be
/// concatenated in slice order. Generic over the output vector so the
/// parallel evaluator can append into per-worker arena-backed vectors
/// (util::ArenaVector) while every other caller keeps std::vector.
/// Columnar buckets dispatch to the zero-copy page sweep above.
template <typename MatchVec>
JoinCounters MergeCrossMatchInto(const storage::Bucket& bucket,
                                 std::span<const query::WorkloadEntry> batch,
                                 MatchVec* out) {
  if (bucket.is_columnar()) {
    return MergeCrossMatchInto(bucket.view(), batch, out);
  }
  JoinCounters counters;
  const htm::IdRange bucket_range = bucket.range();
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.workload_objects;
      for (const htm::IdRange& r : qo.htm_ranges.ranges()) {
        if (!r.Overlaps(bucket_range)) continue;
        htm::HtmId lo = std::max(r.lo, bucket_range.lo);
        htm::HtmId hi = std::min(r.hi, bucket_range.hi);
        for (const storage::CatalogObject& co :
             bucket.ObjectsInRange(lo, hi)) {
          ++counters.candidates_tested;
          double sep = 0.0;
          if (!WithinRadius(qo, co, &sep)) continue;
          ++counters.spatial_matches;
          if (!entry.predicate.Matches(co)) continue;
          ++counters.output_matches;
          if (out != nullptr) {
            out->push_back(query::Match{entry.query_id, qo.id, co.object_id,
                                        sep, co.ra_deg, co.dec_deg});
          }
        }
      }
    }
  }
  return counters;
}

/// The std::vector instantiation of MergeCrossMatchInto (the serial path
/// and every pre-arena call site).
JoinCounters MergeCrossMatch(const storage::Bucket& bucket,
                             std::span<const query::WorkloadEntry> batch,
                             std::vector<query::Match>* out);

}  // namespace liferaft::join

#endif  // LIFERAFT_JOIN_MERGE_JOIN_H_
