#include "join/evaluator.h"

#include <cassert>

namespace liferaft::join {
namespace {

uint64_t CountObjects(const std::vector<query::WorkloadEntry>& batch) {
  uint64_t n = 0;
  for (const auto& e : batch) n += e.objects.size();
  return n;
}

}  // namespace

JoinEvaluator::JoinEvaluator(storage::BucketCache* cache,
                             const storage::BTreeIndex* index,
                             storage::DiskModel model, HybridConfig config)
    : cache_(cache), index_(index), model_(model), config_(config) {
  assert(cache_ != nullptr);
}

Result<BatchResult> JoinEvaluator::EvaluateBucket(
    storage::BucketIndex bucket,
    const std::vector<query::WorkloadEntry>& batch, bool collect_matches) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty batch for bucket " +
                                   std::to_string(bucket));
  }
  BatchResult result;
  const uint64_t queue_objects = CountObjects(batch);
  const bool cached = cache_->Contains(bucket);
  const uint64_t bucket_objects =
      cache_->store().BucketObjectCount(bucket);

  result.strategy =
      (index_ == nullptr)
          ? JoinStrategy::kScan
          : ChooseStrategy(config_, queue_objects, bucket_objects, cached);

  std::vector<query::Match>* out = collect_matches ? &result.matches
                                                   : nullptr;
  if (result.strategy == JoinStrategy::kScan) {
    // Pull the bucket through the cache: a miss reads from the store and
    // pays T_b; a hit pays only the in-memory matching term.
    LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const storage::Bucket> b,
                              cache_->Get(bucket));
    result.cache_hit = cached;
    result.cost_ms =
        model_.ScanJoinMs(b->EstimatedBytes(), queue_objects, cached);
    result.counters = MergeCrossMatch(*b, batch, out);
    ++stats_.scan_batches;
  } else {
    // Indexed path: per-object random probes; the bucket itself is never
    // materialized, so the cache is untouched (the paper's age-biased
    // scheduler leans on this to serve uncached buckets cheaply).
    const htm::IdRange range = cache_->store().bucket_map().RangeOf(bucket);
    IndexedJoinCounters counters =
        IndexedCrossMatch(*index_, range, batch, out);
    result.cache_hit = false;
    result.cost_ms = model_.IndexedJoinMs(queue_objects);
    result.counters = counters.join;
    stats_.index_probes += counters.probes;
    ++stats_.indexed_batches;
  }
  ++stats_.batches;
  stats_.total_cost_ms += result.cost_ms;
  return result;
}

}  // namespace liferaft::join
