#include "join/evaluator.h"

#include <cassert>
#include <future>
#include <span>

#include "util/arena.h"

namespace liferaft::join {
namespace {

/// Match storage of one parallel slice: arena-backed when the executing
/// worker's arena is enabled for this batch, shared-heap otherwise (same
/// type either way, so the kernels instantiate once).
using SliceMatches = util::ArenaVector<query::Match>;

/// The allocator for a slice task running on the current thread: the
/// worker's own arena when arenas are on, the heap off-pool or when off.
util::ArenaAllocator<query::Match> SliceAllocator(bool use_arenas) {
  return util::ArenaAllocator<query::Match>(
      use_arenas ? util::ThreadPool::CurrentArena() : nullptr);
}

uint64_t CountObjects(const std::vector<query::WorkloadEntry>& batch) {
  uint64_t n = 0;
  for (const auto& e : batch) n += e.objects.size();
  return n;
}

/// Splits `[0, n)` into at most `parts` contiguous slices of near-equal
/// size (earlier slices get the remainder). Deterministic in (n, parts).
std::vector<std::span<const query::WorkloadEntry>> SliceBatch(
    const std::vector<query::WorkloadEntry>& batch, size_t parts) {
  std::vector<std::span<const query::WorkloadEntry>> slices;
  const size_t n = batch.size();
  parts = std::max<size_t>(std::min(parts, n), 1);
  slices.reserve(parts);
  const size_t base = n / parts;
  const size_t rem = n % parts;
  size_t offset = 0;
  for (size_t i = 0; i < parts; ++i) {
    const size_t len = base + (i < rem ? 1 : 0);
    slices.push_back(std::span<const query::WorkloadEntry>(batch).subspan(
        offset, len));
    offset += len;
  }
  return slices;
}

/// Fans `kernel(slice, out)` across the pool, one task per contiguous
/// slice of `batch`, and merges counters and matches in slice (= entry)
/// order, which makes the result identical to one serial kernel call over
/// the whole batch. With `use_arenas` each slice appends its matches into
/// the executing worker's bump arena (reclaimed by the caller's next
/// ResetArenas); the in-order merge into `out` copies them to the shared
/// heap, so nothing arena-backed escapes the call. Every task is drained
/// before any exception propagates: tasks reference stack-owned inputs, so
/// unwinding while a worker still runs would be a use-after-free.
template <typename Counters, typename Kernel>
Counters ParallelJoin(util::ThreadPool& pool,
                      const std::vector<query::WorkloadEntry>& batch,
                      std::vector<query::Match>* out, bool use_arenas,
                      const Kernel& kernel) {
  struct SliceResult {
    Counters counters{};
    SliceMatches matches;
  };
  const bool collect = out != nullptr;
  std::vector<std::future<SliceResult>> futures;
  try {
    auto slices = SliceBatch(batch, pool.num_threads());
    futures.reserve(slices.size());
    for (auto slice : slices) {
      futures.push_back(pool.Submit([&kernel, slice, collect, use_arenas] {
        SliceResult r{Counters{}, SliceMatches(SliceAllocator(use_arenas))};
        r.counters = kernel(slice, collect ? &r.matches : nullptr);
        return r;
      }));
    }
    for (auto& f : futures) f.wait();
  } catch (...) {
    for (auto& f : futures) {
      if (f.valid()) f.wait();
    }
    throw;
  }
  Counters total{};
  for (auto& f : futures) {
    SliceResult r = f.get();  // rethrows a worker's exception, post-drain
    total += r.counters;
    if (out != nullptr) {
      out->insert(out->end(), r.matches.begin(), r.matches.end());
    }
  }
  return total;
}

}  // namespace

JoinEvaluator::JoinEvaluator(storage::BucketCache* cache,
                             const storage::BTreeIndex* index,
                             storage::DiskModel model, HybridConfig config)
    : cache_(cache), index_(index), model_(model), config_(config) {
  assert(cache_ != nullptr);
}

Result<BatchResult> JoinEvaluator::EvaluateBucket(
    storage::BucketIndex bucket,
    const std::vector<query::WorkloadEntry>& batch, bool collect_matches) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty batch for bucket " +
                                   std::to_string(bucket));
  }
  BatchResult result;
  const uint64_t queue_objects = CountObjects(batch);
  const bool cached = cache_->Contains(bucket);
  const uint64_t bucket_objects =
      cache_->store().BucketObjectCount(bucket);

  result.strategy =
      (index_ == nullptr)
          ? JoinStrategy::kScan
          : ChooseStrategy(config_, queue_objects, bucket_objects, cached);

  const bool parallel = pool_ != nullptr && batch.size() > 1;
  const bool arenas = use_match_arenas_ && parallel;
  // Batch boundary: the previous batch's slice vectors are all merged and
  // destroyed, so every worker arena can be reclaimed in one bump.
  if (arenas) pool_->ResetArenas();
  std::vector<query::Match>* out = collect_matches ? &result.matches
                                                   : nullptr;
  if (result.strategy == JoinStrategy::kScan) {
    // Pull the bucket through the cache: a miss reads from the store and
    // pays T_b; a hit pays only the in-memory matching term. The cache is
    // touched once, serially, before any fan-out.
    LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const storage::Bucket> b,
                              cache_->Get(bucket));
    result.cache_hit = cached;
    // T_b from the bucket's volume (identical to model_ when the topology
    // is uniform or absent); T_m stays global — matching is CPU.
    result.io_ms = cached ? 0.0
                          : SequentialModelFor(bucket).SequentialReadMs(
                                ModeledBytes(bucket));
    result.cpu_ms = model_.MatchMs(queue_objects);
    result.cost_ms = result.io_ms + result.cpu_ms;
    if (parallel) {
      result.counters = ParallelJoin<JoinCounters>(
          *pool_, batch, out, arenas,
          [b](std::span<const query::WorkloadEntry> slice,
              SliceMatches* slice_out) {
            return MergeCrossMatchInto(*b, slice, slice_out);
          });
    } else {
      result.counters = MergeCrossMatch(*b, batch, out);
    }
    ++stats_.scan_batches;
  } else {
    // Indexed path: per-object random probes; the bucket itself is never
    // materialized, so the cache is untouched (the paper's age-biased
    // scheduler leans on this to serve uncached buckets cheaply). The
    // B+tree is immutable after bulk load, so concurrent probes are safe.
    const htm::IdRange range = cache_->store().bucket_map().RangeOf(bucket);
    IndexedJoinCounters counters;
    if (parallel) {
      counters = ParallelJoin<IndexedJoinCounters>(
          *pool_, batch, out, arenas,
          [this, range](std::span<const query::WorkloadEntry> slice,
                        SliceMatches* slice_out) {
            return IndexedCrossMatchInto(*index_, range, slice, slice_out);
          });
    } else {
      counters = IndexedCrossMatch(*index_, range, batch, out);
    }
    result.cache_hit = false;
    result.io_ms = model_.IndexedProbesMs(queue_objects);
    result.cpu_ms = model_.MatchMs(queue_objects);
    result.cost_ms = result.io_ms + result.cpu_ms;
    result.counters = counters.join;
    stats_.index_probes += counters.probes;
    ++stats_.indexed_batches;
  }
  ++stats_.batches;
  stats_.total_cost_ms += result.cost_ms;
  return result;
}

Result<std::vector<PerQueryResult>> JoinEvaluator::EvaluatePerQueryWindow(
    PerQueryMode mode, const std::vector<PerQueryWork>& window,
    bool collect_matches) {
  if (mode == PerQueryMode::kIndexProbes && index_ == nullptr) {
    return Status::FailedPrecondition("index probes require an index");
  }
  const bool parallel = pool_ != nullptr && window.size() > 1;
  // NoShare bucket reads go store-direct. In the parallel case, when the
  // store supports concurrent reads, each worker reads its own buckets one
  // at a time through ReadBucketForPrefetch — memory is bounded by the
  // buckets in flight, not the backlog — and the owner applies the
  // deferred I/O accounting per query in window order. Otherwise the owner
  // pre-reads in window order via the stats-recording ReadBucket. Either
  // way the store totals equal serial evaluation's (one read per
  // sub-query, duplicates included).
  const bool worker_reads =
      mode == PerQueryMode::kNoShareScan && parallel &&
      cache_->mutable_store()->SupportsConcurrentReads();
  const bool arenas = use_match_arenas_ && parallel;
  // Worker-side bucket reads route their transient decode buffers through
  // the executing worker's arena when io arenas are on; the buffers die
  // inside the read, so the same window-boundary reset covers them.
  const bool io_arenas = use_io_arenas_ && worker_reads;
  // Window boundary: every prior task's arena-backed vectors are gone.
  if (arenas || io_arenas) pool_->ResetArenas();
  std::vector<std::vector<std::shared_ptr<const storage::Bucket>>> buckets;
  if (mode == PerQueryMode::kNoShareScan && !worker_reads) {
    buckets.resize(window.size());
    for (size_t i = 0; i < window.size(); ++i) {
      buckets[i].reserve(window[i].workloads->size());
      for (const query::BucketWorkload& w : *window[i].workloads) {
        LIFERAFT_ASSIGN_OR_RETURN(
            std::shared_ptr<const storage::Bucket> b,
            cache_->mutable_store()->ReadBucket(w.bucket));
        buckets[i].push_back(std::move(b));
      }
    }
  }

  // One query's evaluation plus its deferred I/O charges.
  struct QueryEval {
    PerQueryResult result;
    uint64_t reads = 0;
    uint64_t read_bytes = 0;
    uint64_t read_objects = 0;
  };

  // Deterministic in isolation: reads only this query's (immutable) inputs,
  // so it computes the same result on any thread at any time. Materialized
  // matches are per-query scratch (counts are the result), so they go to
  // the executing worker's arena when arenas are on.
  auto evaluate_one = [this, mode, collect_matches, worker_reads, arenas,
                       io_arenas, &window,
                       &buckets](size_t i) -> Result<QueryEval> {
    const PerQueryWork& work = window[i];
    QueryEval eval;
    SliceMatches out(SliceAllocator(arenas));
    SliceMatches* outp = collect_matches ? &out : nullptr;
    size_t wi = 0;
    for (const query::BucketWorkload& w : *work.workloads) {
      query::WorkloadEntry entry;
      entry.query_id = work.query_id;
      entry.arrival_ms = work.arrival_ms;
      entry.predicate = work.predicate;
      entry.objects = w.objects;
      const std::vector<query::WorkloadEntry> batch = {std::move(entry)};
      if (mode == PerQueryMode::kNoShareScan) {
        // Independent evaluation: no shared cache, pay full T_b + T_m.
        std::shared_ptr<const storage::Bucket> b;
        if (worker_reads) {
          LIFERAFT_ASSIGN_OR_RETURN(
              b, cache_->mutable_store()->ReadBucketForPrefetchScratch(
                     w.bucket, io_arenas ? util::ThreadPool::CurrentArena()
                                         : nullptr));
          ++eval.reads;
          eval.read_bytes += b->EstimatedBytes();
          eval.read_objects += b->size();
        } else {
          b = buckets[i][wi];
        }
        ++wi;
        JoinCounters counters = MergeCrossMatchInto(*b, batch, outp);
        eval.result.matches += counters.output_matches;
        // Full T_b from the bucket's volume, T_m global (see
        // set_topology).
        eval.result.cost_ms +=
            SequentialModelFor(w.bucket)
                .SequentialReadMs(ModeledBytes(w.bucket)) +
            model_.MatchMs(w.objects.size());
        // b drops here, so a materializing store holds at most one bucket
        // per worker at a time.
      } else {
        // Legacy index-exclusive execution (paper §5): every probe pays a
        // cold root-to-leaf descent plus a heap row fetch — height + 2
        // random I/Os per probe.
        const htm::IdRange range = cache_->store().bucket_map().RangeOf(
            w.bucket);
        IndexedJoinCounters counters =
            IndexedCrossMatchInto(*index_, range, batch, outp);
        eval.result.matches += counters.join.output_matches;
        uint64_t ios_per_probe = static_cast<uint64_t>(index_->height()) + 2;
        eval.result.cost_ms +=
            model_.IndexedProbesMs(counters.probes * ios_per_probe) +
            model_.MatchMs(counters.join.workload_objects);
      }
    }
    return eval;
  };

  std::vector<PerQueryResult> results(window.size());
  auto commit = [this, worker_reads, &results](size_t i, QueryEval eval) {
    if (worker_reads) {
      cache_->mutable_store()->RecordPrefetchedReads(
          eval.reads, eval.read_bytes, eval.read_objects);
    }
    results[i] = eval.result;
  };
  if (!parallel) {
    for (size_t i = 0; i < window.size(); ++i) {
      LIFERAFT_ASSIGN_OR_RETURN(QueryEval eval, evaluate_one(i));
      commit(i, std::move(eval));
    }
    return results;
  }
  // One task per query; merged by submission index, so the window order
  // (and with it every downstream accounting order) is preserved. Drain
  // every task before an exception unwinds the stack the tasks reference.
  std::vector<std::future<Result<QueryEval>>> futures;
  try {
    futures.reserve(window.size());
    for (size_t i = 0; i < window.size(); ++i) {
      futures.push_back(pool_->Submit([&evaluate_one, i] {
        return evaluate_one(i);
      }));
    }
    for (auto& f : futures) f.wait();
  } catch (...) {
    for (auto& f : futures) {
      if (f.valid()) f.wait();
    }
    throw;
  }
  for (size_t i = 0; i < window.size(); ++i) {
    Result<QueryEval> eval = futures[i].get();  // rethrows worker exceptions
    if (!eval.ok()) return eval.status();
    commit(i, std::move(*eval));
  }
  return results;
}

}  // namespace liferaft::join
