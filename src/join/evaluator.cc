#include "join/evaluator.h"

#include <cassert>
#include <future>
#include <span>

namespace liferaft::join {
namespace {

uint64_t CountObjects(const std::vector<query::WorkloadEntry>& batch) {
  uint64_t n = 0;
  for (const auto& e : batch) n += e.objects.size();
  return n;
}

/// Splits `[0, n)` into at most `parts` contiguous slices of near-equal
/// size (earlier slices get the remainder). Deterministic in (n, parts).
std::vector<std::span<const query::WorkloadEntry>> SliceBatch(
    const std::vector<query::WorkloadEntry>& batch, size_t parts) {
  std::vector<std::span<const query::WorkloadEntry>> slices;
  const size_t n = batch.size();
  parts = std::max<size_t>(std::min(parts, n), 1);
  slices.reserve(parts);
  const size_t base = n / parts;
  const size_t rem = n % parts;
  size_t offset = 0;
  for (size_t i = 0; i < parts; ++i) {
    const size_t len = base + (i < rem ? 1 : 0);
    slices.push_back(std::span<const query::WorkloadEntry>(batch).subspan(
        offset, len));
    offset += len;
  }
  return slices;
}

/// Fans `kernel(slice, out)` across the pool, one task per contiguous
/// slice of `batch`, and merges counters and matches in slice (= entry)
/// order, which makes the result identical to one serial kernel call over
/// the whole batch. Every task is drained before any exception propagates:
/// tasks reference stack-owned inputs, so unwinding while a worker still
/// runs would be a use-after-free.
template <typename Counters, typename Kernel>
Counters ParallelJoin(util::ThreadPool& pool,
                      const std::vector<query::WorkloadEntry>& batch,
                      std::vector<query::Match>* out, const Kernel& kernel) {
  struct SliceResult {
    Counters counters{};
    std::vector<query::Match> matches;
  };
  const bool collect = out != nullptr;
  std::vector<std::future<SliceResult>> futures;
  try {
    auto slices = SliceBatch(batch, pool.num_threads());
    futures.reserve(slices.size());
    for (auto slice : slices) {
      futures.push_back(pool.Submit([&kernel, slice, collect] {
        SliceResult r;
        r.counters = kernel(slice, collect ? &r.matches : nullptr);
        return r;
      }));
    }
    for (auto& f : futures) f.wait();
  } catch (...) {
    for (auto& f : futures) {
      if (f.valid()) f.wait();
    }
    throw;
  }
  Counters total{};
  for (auto& f : futures) {
    SliceResult r = f.get();  // rethrows a worker's exception, post-drain
    total += r.counters;
    if (out != nullptr) {
      out->insert(out->end(), r.matches.begin(), r.matches.end());
    }
  }
  return total;
}

}  // namespace

JoinEvaluator::JoinEvaluator(storage::BucketCache* cache,
                             const storage::BTreeIndex* index,
                             storage::DiskModel model, HybridConfig config)
    : cache_(cache), index_(index), model_(model), config_(config) {
  assert(cache_ != nullptr);
}

Result<BatchResult> JoinEvaluator::EvaluateBucket(
    storage::BucketIndex bucket,
    const std::vector<query::WorkloadEntry>& batch, bool collect_matches) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty batch for bucket " +
                                   std::to_string(bucket));
  }
  BatchResult result;
  const uint64_t queue_objects = CountObjects(batch);
  const bool cached = cache_->Contains(bucket);
  const uint64_t bucket_objects =
      cache_->store().BucketObjectCount(bucket);

  result.strategy =
      (index_ == nullptr)
          ? JoinStrategy::kScan
          : ChooseStrategy(config_, queue_objects, bucket_objects, cached);

  const bool parallel = pool_ != nullptr && batch.size() > 1;
  std::vector<query::Match>* out = collect_matches ? &result.matches
                                                   : nullptr;
  if (result.strategy == JoinStrategy::kScan) {
    // Pull the bucket through the cache: a miss reads from the store and
    // pays T_b; a hit pays only the in-memory matching term. The cache is
    // touched once, serially, before any fan-out.
    LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const storage::Bucket> b,
                              cache_->Get(bucket));
    result.cache_hit = cached;
    result.cost_ms =
        model_.ScanJoinMs(b->EstimatedBytes(), queue_objects, cached);
    if (parallel) {
      result.counters = ParallelJoin<JoinCounters>(
          *pool_, batch, out,
          [b](std::span<const query::WorkloadEntry> slice,
              std::vector<query::Match>* slice_out) {
            return MergeCrossMatch(*b, slice, slice_out);
          });
    } else {
      result.counters = MergeCrossMatch(*b, batch, out);
    }
    ++stats_.scan_batches;
  } else {
    // Indexed path: per-object random probes; the bucket itself is never
    // materialized, so the cache is untouched (the paper's age-biased
    // scheduler leans on this to serve uncached buckets cheaply). The
    // B+tree is immutable after bulk load, so concurrent probes are safe.
    const htm::IdRange range = cache_->store().bucket_map().RangeOf(bucket);
    IndexedJoinCounters counters;
    if (parallel) {
      counters = ParallelJoin<IndexedJoinCounters>(
          *pool_, batch, out,
          [this, range](std::span<const query::WorkloadEntry> slice,
                        std::vector<query::Match>* slice_out) {
            return IndexedCrossMatch(*index_, range, slice, slice_out);
          });
    } else {
      counters = IndexedCrossMatch(*index_, range, batch, out);
    }
    result.cache_hit = false;
    result.cost_ms = model_.IndexedJoinMs(queue_objects);
    result.counters = counters.join;
    stats_.index_probes += counters.probes;
    ++stats_.indexed_batches;
  }
  ++stats_.batches;
  stats_.total_cost_ms += result.cost_ms;
  return result;
}

}  // namespace liferaft::join
