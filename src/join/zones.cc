#include "join/zones.h"

#include <algorithm>
#include <cmath>

namespace liferaft::join {

ZoneIndex::ZoneIndex(const storage::Bucket& bucket, double zone_height_deg)
    : zone_height_deg_(std::max(zone_height_deg, 1e-6)) {
  int num_zones =
      static_cast<int>(std::ceil(180.0 / zone_height_deg_)) + 1;
  zones_.resize(static_cast<size_t>(num_zones));
  for (const auto& o : bucket.objects()) {
    zones_[static_cast<size_t>(ZoneOf(o.dec_deg))].by_ra.push_back(&o);
  }
  for (auto& z : zones_) {
    std::sort(z.by_ra.begin(), z.by_ra.end(),
              [](const storage::CatalogObject* a,
                 const storage::CatalogObject* b) {
                return a->ra_deg < b->ra_deg;
              });
  }
}

int ZoneIndex::ZoneOf(double dec_deg) const {
  int z = static_cast<int>(std::floor((dec_deg + 90.0) / zone_height_deg_));
  return std::clamp(z, 0, static_cast<int>(zones_.size()) - 1);
}

void ZoneIndex::Candidates(
    const query::QueryObject& qo,
    std::vector<const storage::CatalogObject*>* out) const {
  const double r_deg = qo.radius_arcsec / kArcsecPerDeg;
  int z_lo = ZoneOf(qo.dec_deg - r_deg);
  int z_hi = ZoneOf(qo.dec_deg + r_deg);
  // RA window width grows with |dec|; use the worst case over the circle
  // and guard the pole where the window degenerates to all RA.
  double max_abs_dec =
      std::min(89.9999, std::max(std::abs(qo.dec_deg - r_deg),
                                 std::abs(qo.dec_deg + r_deg)));
  double cos_dec = std::cos(max_abs_dec * kDegToRad);
  bool full_ra = cos_dec <= 1e-9 || r_deg / cos_dec >= 180.0;
  double dr = full_ra ? 180.0 : r_deg / cos_dec;

  for (int z = z_lo; z <= z_hi; ++z) {
    const auto& by_ra = zones_[static_cast<size_t>(z)].by_ra;
    if (by_ra.empty()) continue;
    auto scan = [&](double lo, double hi) {
      auto first = std::lower_bound(
          by_ra.begin(), by_ra.end(), lo,
          [](const storage::CatalogObject* o, double v) {
            return o->ra_deg < v;
          });
      for (auto it = first; it != by_ra.end() && (*it)->ra_deg <= hi; ++it) {
        out->push_back(*it);
      }
    };
    if (full_ra) {
      for (const auto* o : by_ra) out->push_back(o);
      continue;
    }
    double lo = qo.ra_deg - dr;
    double hi = qo.ra_deg + dr;
    if (lo < 0.0) {
      scan(0.0, hi);
      scan(lo + 360.0, 360.0);
    } else if (hi > 360.0) {
      scan(lo, 360.0);
      scan(0.0, hi - 360.0);
    } else {
      scan(lo, hi);
    }
  }
}

ColumnarZoneIndex::ColumnarZoneIndex(const storage::ColumnarBucketView& view,
                                     double zone_height_deg)
    : view_(view), zone_height_deg_(std::max(zone_height_deg, 1e-6)) {
  int num_zones =
      static_cast<int>(std::ceil(180.0 / zone_height_deg_)) + 1;
  zones_.resize(static_cast<size_t>(num_zones));
  const std::span<const double> dec = view_.dec();
  for (uint32_t i = 0; i < view_.size(); ++i) {
    zones_[static_cast<size_t>(ZoneOf(dec[i]))].by_ra.push_back(i);
  }
  const std::span<const double> ra = view_.ra();
  for (auto& z : zones_) {
    std::sort(z.by_ra.begin(), z.by_ra.end(),
              [&ra](uint32_t a, uint32_t b) { return ra[a] < ra[b]; });
  }
}

int ColumnarZoneIndex::ZoneOf(double dec_deg) const {
  int z = static_cast<int>(std::floor((dec_deg + 90.0) / zone_height_deg_));
  return std::clamp(z, 0, static_cast<int>(zones_.size()) - 1);
}

void ColumnarZoneIndex::Candidates(const query::QueryObject& qo,
                                   std::vector<uint32_t>* out) const {
  const std::span<const double> ra = view_.ra();
  const double r_deg = qo.radius_arcsec / kArcsecPerDeg;
  int z_lo = ZoneOf(qo.dec_deg - r_deg);
  int z_hi = ZoneOf(qo.dec_deg + r_deg);
  double max_abs_dec =
      std::min(89.9999, std::max(std::abs(qo.dec_deg - r_deg),
                                 std::abs(qo.dec_deg + r_deg)));
  double cos_dec = std::cos(max_abs_dec * kDegToRad);
  bool full_ra = cos_dec <= 1e-9 || r_deg / cos_dec >= 180.0;
  double dr = full_ra ? 180.0 : r_deg / cos_dec;

  for (int z = z_lo; z <= z_hi; ++z) {
    const auto& by_ra = zones_[static_cast<size_t>(z)].by_ra;
    if (by_ra.empty()) continue;
    auto scan = [&](double lo, double hi) {
      auto first = std::lower_bound(
          by_ra.begin(), by_ra.end(), lo,
          [&ra](uint32_t i, double v) { return ra[i] < v; });
      for (auto it = first; it != by_ra.end() && ra[*it] <= hi; ++it) {
        out->push_back(*it);
      }
    };
    if (full_ra) {
      for (uint32_t i : by_ra) out->push_back(i);
      continue;
    }
    double lo = qo.ra_deg - dr;
    double hi = qo.ra_deg + dr;
    if (lo < 0.0) {
      scan(0.0, hi);
      scan(lo + 360.0, 360.0);
    } else if (hi > 360.0) {
      scan(lo, 360.0);
      scan(0.0, hi - 360.0);
    } else {
      scan(lo, hi);
    }
  }
}

JoinCounters ZonesCrossMatch(const storage::ColumnarBucketView& view,
                             const std::vector<query::WorkloadEntry>& batch,
                             double zone_height_deg,
                             std::vector<query::Match>* out) {
  JoinCounters counters;
  ColumnarZoneIndex index(view, zone_height_deg);
  const std::span<const Vec3> pos = view.positions();
  const std::span<const double> ra = view.ra();
  const std::span<const double> dec = view.dec();
  const std::span<const float> mag = view.mag();
  const std::span<const float> color = view.color();
  std::vector<uint32_t> candidates;
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.workload_objects;
      candidates.clear();
      index.Candidates(qo, &candidates);
      for (uint32_t i : candidates) {
        ++counters.candidates_tested;
        double sep = 0.0;
        if (!WithinRadius(qo, pos[i], &sep)) continue;
        ++counters.spatial_matches;
        if (!entry.predicate.Matches(mag[i], color[i])) continue;
        ++counters.output_matches;
        if (out != nullptr) {
          out->push_back(query::Match{entry.query_id, qo.id,
                                      view.object_id(i), sep, ra[i], dec[i]});
        }
      }
    }
  }
  return counters;
}

JoinCounters ZonesCrossMatch(const storage::Bucket& bucket,
                             const std::vector<query::WorkloadEntry>& batch,
                             double zone_height_deg,
                             std::vector<query::Match>* out) {
  if (bucket.is_columnar()) {
    return ZonesCrossMatch(bucket.view(), batch, zone_height_deg, out);
  }
  JoinCounters counters;
  ZoneIndex index(bucket, zone_height_deg);
  std::vector<const storage::CatalogObject*> candidates;
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.workload_objects;
      candidates.clear();
      index.Candidates(qo, &candidates);
      for (const storage::CatalogObject* co : candidates) {
        ++counters.candidates_tested;
        double sep = 0.0;
        if (!WithinRadius(qo, *co, &sep)) continue;
        ++counters.spatial_matches;
        if (!entry.predicate.Matches(*co)) continue;
        ++counters.output_matches;
        if (out != nullptr) {
          out->push_back(query::Match{entry.query_id, qo.id, co->object_id,
                                      sep, co->ra_deg, co->dec_deg});
        }
      }
    }
  }
  return counters;
}

}  // namespace liferaft::join
