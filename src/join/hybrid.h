// Hybrid join strategy (paper §3.4): per bucket batch, choose an indexed
// join when the workload queue is small relative to the bucket (random I/O
// beats a full scan) and a non-indexed sequential scan otherwise. The paper
// measures the break-even at roughly 3% of the bucket size for 40 MB
// buckets.

#ifndef LIFERAFT_JOIN_HYBRID_H_
#define LIFERAFT_JOIN_HYBRID_H_

#include <cstdint>

#include "storage/disk_model.h"

namespace liferaft::join {

/// The two executable plans for one bucket batch.
enum class JoinStrategy {
  kScan,     ///< read (or reuse cached) bucket, sequential merge
  kIndexed,  ///< one index probe per workload object
};

const char* JoinStrategyName(JoinStrategy s);

/// Hybrid-strategy configuration.
struct HybridConfig {
  /// Use the indexed join when queue_size / bucket_size is strictly below
  /// this (paper: ~0.03). Set to 0 to always scan, to >1 to always probe.
  double index_threshold = 0.03;
  /// A cached bucket costs no T_b, so scanning always wins for resident
  /// buckets; when true (default, matching the paper's cache-aware
  /// scheduling) residency overrides the threshold.
  bool prefer_scan_when_cached = true;
};

/// Picks the plan for a batch of `queue_objects` workload objects against a
/// bucket of `bucket_objects` objects.
JoinStrategy ChooseStrategy(const HybridConfig& config, uint64_t queue_objects,
                            uint64_t bucket_objects, bool bucket_cached);

/// The break-even queue/bucket ratio implied by a disk model: the ratio at
/// which an uncached scan and an indexed join cost the same. Used by the
/// Fig 2 reproduction and as a principled default threshold.
double BreakEvenRatio(const storage::DiskModel& model,
                      uint64_t bucket_objects);

}  // namespace liferaft::join

#endif  // LIFERAFT_JOIN_HYBRID_H_
