#include "join/hybrid.h"

#include "storage/bucket.h"

namespace liferaft::join {

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kScan:
      return "scan";
    case JoinStrategy::kIndexed:
      return "indexed";
  }
  return "?";
}

JoinStrategy ChooseStrategy(const HybridConfig& config, uint64_t queue_objects,
                            uint64_t bucket_objects, bool bucket_cached) {
  if (bucket_cached && config.prefer_scan_when_cached) {
    return JoinStrategy::kScan;
  }
  if (bucket_objects == 0) return JoinStrategy::kIndexed;
  double ratio =
      static_cast<double>(queue_objects) / static_cast<double>(bucket_objects);
  return ratio < config.index_threshold ? JoinStrategy::kIndexed
                                        : JoinStrategy::kScan;
}

double BreakEvenRatio(const storage::DiskModel& model,
                      uint64_t bucket_objects) {
  if (bucket_objects == 0) return 0.0;
  // Solve T_b + |W| T_m = |W| (probe + T_m)  =>  |W| = T_b / probe.
  double tb = model.SequentialReadMs(bucket_objects *
                                     storage::Bucket::kBytesPerObject);
  double w = tb / model.params().index_probe_ms;
  return w / static_cast<double>(bucket_objects);
}

}  // namespace liferaft::join
