// The Zones algorithm (Gray, Nieto-Santisteban & Szalay 2006), the scan-
// based cross-match SkyQuery's batch proposals build on: declination is cut
// into horizontal zones; within a zone, objects sorted by right ascension
// are matched against a bounded RA window. Included as an independent
// matcher for cross-validation of the merge join and for the join-strategy
// ablation.

#ifndef LIFERAFT_JOIN_ZONES_H_
#define LIFERAFT_JOIN_ZONES_H_

#include <vector>

#include "join/merge_join.h"
#include "query/workload.h"
#include "storage/bucket.h"

namespace liferaft::join {

/// Zone-indexed view of one bucket's objects. Build once per bucket batch,
/// reuse across all workload entries.
class ZoneIndex {
 public:
  /// @param zone_height_deg zone height; must be >= the largest error
  ///        radius being matched for single-neighbor-zone correctness
  ///        (callers pass max radius, we still search all overlapped zones
  ///        so larger radii remain correct).
  ZoneIndex(const storage::Bucket& bucket, double zone_height_deg);

  /// All bucket objects within `radius_arcsec` of the query object.
  void Candidates(const query::QueryObject& qo,
                  std::vector<const storage::CatalogObject*>* out) const;

  size_t num_zones() const { return zones_.size(); }

 private:
  struct Zone {
    std::vector<const storage::CatalogObject*> by_ra;  // sorted by ra_deg
  };

  int ZoneOf(double dec_deg) const;

  double zone_height_deg_;
  std::vector<Zone> zones_;  // zone 0 starts at dec = -90
};

/// Zone index over a columnar page: zones hold row indices sorted by the
/// ra column, so candidate generation walks the column spans in place and
/// no CatalogObject row is ever materialized.
class ColumnarZoneIndex {
 public:
  ColumnarZoneIndex(const storage::ColumnarBucketView& view,
                    double zone_height_deg);

  /// Row indices of all page objects within `radius_arcsec` of the query
  /// object.
  void Candidates(const query::QueryObject& qo,
                  std::vector<uint32_t>* out) const;

  size_t num_zones() const { return zones_.size(); }

 private:
  struct Zone {
    std::vector<uint32_t> by_ra;  // row indices sorted by ra column
  };

  int ZoneOf(double dec_deg) const;

  storage::ColumnarBucketView view_;
  double zone_height_deg_;
  std::vector<Zone> zones_;  // zone 0 starts at dec = -90
};

/// Cross-matches a workload batch against a bucket using the zones
/// algorithm. Result set is identical to MergeCrossMatch (order may
/// differ). Columnar buckets dispatch to the zero-copy overload below.
JoinCounters ZonesCrossMatch(const storage::Bucket& bucket,
                             const std::vector<query::WorkloadEntry>& batch,
                             double zone_height_deg,
                             std::vector<query::Match>* out);

/// Zones over one columnar page, scanning the ra/dec/mag/color columns in
/// place. Result set identical to the row form on the same objects.
JoinCounters ZonesCrossMatch(const storage::ColumnarBucketView& view,
                             const std::vector<query::WorkloadEntry>& batch,
                             double zone_height_deg,
                             std::vector<query::Match>* out);

}  // namespace liferaft::join

#endif  // LIFERAFT_JOIN_ZONES_H_
