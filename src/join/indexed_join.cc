#include "join/indexed_join.h"

namespace liferaft::join {

IndexedJoinCounters IndexedCrossMatch(
    const storage::BTreeIndex& index, const htm::IdRange& restrict_to,
    std::span<const query::WorkloadEntry> batch,
    std::vector<query::Match>* out) {
  return IndexedCrossMatchInto(index, restrict_to, batch, out);
}

}  // namespace liferaft::join
