#include "join/indexed_join.h"

#include <algorithm>

namespace liferaft::join {

IndexedJoinCounters IndexedCrossMatch(
    const storage::BTreeIndex& index, const htm::IdRange& restrict_to,
    std::span<const query::WorkloadEntry> batch,
    std::vector<query::Match>* out) {
  IndexedJoinCounters counters;
  for (const query::WorkloadEntry& entry : batch) {
    for (const query::QueryObject& qo : entry.objects) {
      ++counters.join.workload_objects;
      ++counters.probes;
      for (const htm::IdRange& r : qo.htm_ranges.ranges()) {
        if (!r.Overlaps(restrict_to)) continue;
        htm::HtmId lo = std::max(r.lo, restrict_to.lo);
        htm::HtmId hi = std::min(r.hi, restrict_to.hi);
        auto stats = index.RangeScan(
            lo, hi, [&](const storage::CatalogObject& co) {
              ++counters.join.candidates_tested;
              double sep = 0.0;
              if (!WithinRadius(qo, co, &sep)) return;
              ++counters.join.spatial_matches;
              if (!entry.predicate.Matches(co)) return;
              ++counters.join.output_matches;
              if (out != nullptr) {
                out->push_back(query::Match{entry.query_id, qo.id,
                                            co.object_id, sep, co.ra_deg,
                                            co.dec_deg});
              }
            });
        counters.leaves_visited += stats.leaves_visited;
      }
    }
  }
  return counters;
}

}  // namespace liferaft::join
