// Workload-adaptive alpha selection (paper §4): measure throughput-vs-
// response trade-off curves offline at two saturation levels, register
// them with an AlphaSelector under a 20% throughput-tolerance threshold,
// then replay a workload whose arrival rate shifts mid-trace and let the
// engine steer alpha from the observed rate.
//
//   $ ./adaptive_tuning

#include <cstdio>

#include "sched/adaptive.h"
#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

using namespace liferaft;

namespace {

storage::DiskModelParams ScaledDisk() {
  storage::DiskModelParams p;
  p.seek_ms = 6.0;
  p.transfer_mb_per_s = 3.35;
  p.match_ms_per_object = 1.3;
  p.index_probe_ms = 41.0;
  return p;
}

std::unique_ptr<sched::LifeRaftScheduler> MakeScheduler(
    storage::Catalog* catalog, double alpha) {
  sched::LifeRaftConfig config;
  config.alpha = alpha;
  return std::make_unique<sched::LifeRaftScheduler>(
      catalog->store(), storage::DiskModel(ScaledDisk()), config);
}

sim::RunMetrics Replay(storage::Catalog* catalog,
                       const std::vector<query::CrossMatchQuery>& trace,
                       const std::vector<TimeMs>& arrivals, double alpha,
                       const sched::AlphaSelector* selector = nullptr) {
  sim::EngineConfig config;
  config.disk = ScaledDisk();
  config.alpha_selector = selector;
  sim::SimEngine engine(catalog, MakeScheduler(catalog, alpha), config);
  auto metrics = engine.Run(trace, arrivals);
  if (!metrics.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  return *metrics;
}

}  // namespace

int main() {
  workload::CatalogGenConfig gen;
  gen.num_objects = 500'000;
  gen.seed = 17;
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) return 1;
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = 1000;
  auto catalog = storage::Catalog::Build(std::move(*objects),
                                         catalog_options);
  if (!catalog.ok()) return 1;

  workload::TraceConfig tc = workload::LongRunningSkyQueryPreset();
  tc.num_queries = 400;
  auto trace = workload::GenerateTrace(tc);
  if (!trace.ok()) return 1;

  // Phase 1: offline trade-off curves with a representative workload.
  std::printf("measuring trade-off curves offline...\n");
  sched::AlphaSelector selector(/*tolerance=*/0.2);
  for (double rate : {0.1, 1.2}) {
    Rng rng(31);
    auto arrivals = *sim::PoissonArrivals(trace->size(), rate, &rng);
    std::vector<sched::TradeoffPoint> curve;
    for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      auto m = Replay(catalog->get(), *trace, arrivals, alpha);
      curve.push_back(
          sched::TradeoffPoint{alpha, m.throughput_qps, m.avg_response_ms});
    }
    auto pick = sched::SelectAlpha(curve, 0.2);
    std::printf("  saturation %.2f q/s -> selected alpha %.2f\n", rate,
                pick.ok() ? *pick : -1.0);
    if (!selector.AddCurve(rate, std::move(curve)).ok()) return 1;
  }

  // Phase 2: online replay with a rate shift: quiet first half, busy
  // second half. The engine re-selects alpha from the observed rate after
  // every admission.
  std::printf("\nreplaying a workload whose saturation shifts...\n");
  Rng rng(37);
  auto quiet = *sim::PoissonArrivals(trace->size() / 2, 0.1, &rng);
  auto busy = *sim::PoissonArrivals(trace->size() - quiet.size(), 1.2, &rng);
  std::vector<TimeMs> arrivals = quiet;
  for (TimeMs t : busy) arrivals.push_back(quiet.back() + t);

  auto adaptive = Replay(catalog->get(), *trace, arrivals, 0.5, &selector);
  auto fixed_greedy = Replay(catalog->get(), *trace, arrivals, 0.0);
  auto fixed_aged = Replay(catalog->get(), *trace, arrivals, 1.0);

  std::printf("  fixed alpha=0.0: %s\n", fixed_greedy.Summary().c_str());
  std::printf("  fixed alpha=1.0: %s\n", fixed_aged.Summary().c_str());
  std::printf("  adaptive:        %s\n", adaptive.Summary().c_str());
  std::printf(
      "\nthe adaptive controller tracks the arrival-rate estimate and\n"
      "switches between the offline-selected alphas (paper §4, Fig 4).\n");
  return 0;
}
