// Interactive + batch mix with QoS age depreciation (the paper's §6
// future-work extension): short, highly selective queries share the system
// with sky-spanning batch cross-matches. With plain age scheduling the
// short queries inherit the batch queries' queueing; with QoS enabled the
// age of long queries is depreciated so interactive work keeps its
// responsiveness.
//
//   $ ./interactive_mix

#include <cstdio>

#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

using namespace liferaft;

namespace {

storage::DiskModelParams ScaledDisk() {
  storage::DiskModelParams p;
  p.seek_ms = 6.0;
  p.transfer_mb_per_s = 3.35;
  p.match_ms_per_object = 1.3;
  p.index_probe_ms = 41.0;
  return p;
}

// Builds a mixed trace: every 5th query is a short interactive one (a few
// objects, one tiny region); the rest are long batch cross-matches.
std::vector<query::CrossMatchQuery> MixedTrace(size_t n, uint64_t seed) {
  workload::TraceConfig tc = workload::LongRunningSkyQueryPreset();
  tc.num_queries = n;
  tc.seed = seed;
  auto batch = workload::GenerateTrace(tc);
  Rng rng(seed + 1);
  std::vector<query::CrossMatchQuery> mixed = std::move(*batch);
  for (size_t i = 0; i < mixed.size(); i += 5) {
    query::CrossMatchQuery& q = mixed[i];
    q.objects.clear();
    SkyPoint center = workload::RandomSkyPoint(&rng);
    for (int j = 0; j < 6; ++j) {
      q.objects.push_back(query::MakeQueryObject(
          j, workload::RandomPointInCap(&rng, center, 0.05), 3.0));
    }
    q.label = "interactive";
  }
  return mixed;
}

struct MixStats {
  StreamingStats interactive;
  StreamingStats batch;
};

MixStats Replay(storage::Catalog* catalog,
                const std::vector<query::CrossMatchQuery>& trace,
                bool qos_enabled) {
  sched::LifeRaftConfig sched_config;
  sched_config.alpha = 1.0;  // age-ordered: the starvation-resistant end
  sched_config.qos.depreciate_long_queries = qos_enabled;
  sched_config.qos.half_life_parts = 4.0;
  auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
      catalog->store(), storage::DiskModel(ScaledDisk()), sched_config);

  sim::EngineConfig config;
  config.disk = ScaledDisk();
  sim::SimEngine engine(catalog, std::move(scheduler), config);

  Rng rng(11);
  auto arrivals = *sim::PoissonArrivals(trace.size(), 0.5, &rng);
  auto metrics = engine.Run(trace, arrivals);
  if (!metrics.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  MixStats stats;
  for (const sim::QueryOutcome& o : engine.outcomes()) {
    const auto& q = trace[o.id - 1];
    (q.label == "interactive" ? stats.interactive : stats.batch)
        .Add(o.ResponseMs());
  }
  return stats;
}

}  // namespace

int main() {
  workload::CatalogGenConfig gen;
  gen.num_objects = 500'000;
  gen.seed = 17;
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) return 1;
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = 1000;
  auto catalog = storage::Catalog::Build(std::move(*objects),
                                         catalog_options);
  if (!catalog.ok()) return 1;

  auto trace = MixedTrace(500, 23);
  std::printf("mixed workload: %zu queries, every 5th interactive\n\n",
              trace.size());

  for (bool qos : {false, true}) {
    MixStats stats = Replay(catalog->get(), trace, qos);
    std::printf("QoS %s:\n", qos ? "ON " : "OFF");
    std::printf("  interactive avg response: %8.1f s  (n=%zu)\n",
                stats.interactive.mean() / 1000.0,
                stats.interactive.count());
    std::printf("  batch       avg response: %8.1f s  (n=%zu)\n\n",
                stats.batch.mean() / 1000.0, stats.batch.count());
  }
  std::printf(
      "with QoS, long queries' age is depreciated by their outstanding\n"
      "sub-query count, so interactive queries win the age term and finish\n"
      "promptly without starving batch work entirely (paper §6).\n");
  return 0;
}
