// SkyQuery-style batch cross-match: replay a trace of long-running
// cross-match queries against one archive and compare LifeRaft's
// data-driven batching against the NoShare baseline — the paper's headline
// experiment, as a runnable example.
//
//   $ ./skyquery_crossmatch [num_queries]
//
// Uses the same calibrated long-running-query workload as the benchmark
// suite, at a smaller default size so it finishes in seconds.

#include <cstdio>
#include <cstdlib>

#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

using namespace liferaft;

namespace {

storage::DiskModelParams ScaledDisk() {
  storage::DiskModelParams p;
  p.seek_ms = 6.0;
  p.transfer_mb_per_s = 3.35;
  p.match_ms_per_object = 1.3;
  p.index_probe_ms = 41.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;

  // The archive.
  workload::CatalogGenConfig gen;
  gen.num_objects = 500'000;
  gen.seed = 17;
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) return 1;
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = 1000;
  auto catalog = storage::Catalog::Build(std::move(*objects),
                                         catalog_options);
  if (!catalog.ok()) return 1;

  // The workload: long-running cross-matches with SkyQuery-like skew.
  workload::TraceConfig tc = workload::LongRunningSkyQueryPreset();
  tc.num_queries = num_queries;
  auto trace = workload::GenerateTrace(tc);
  if (!trace.ok()) return 1;
  std::printf("replaying %zu long-running cross-match queries against a "
              "%zu-bucket archive\n\n",
              trace->size(), (*catalog)->num_buckets());

  Rng rng(7);
  auto arrivals = *sim::PoissonArrivals(trace->size(), 0.5, &rng);

  // NoShare: every query independent, arrival order.
  sim::EngineConfig noshare_config;
  noshare_config.mode = sim::ExecutionMode::kNoShare;
  noshare_config.disk = ScaledDisk();
  sim::SimEngine noshare(catalog->get(), nullptr, noshare_config);
  auto noshare_metrics = noshare.Run(*trace, arrivals);
  if (!noshare_metrics.ok()) return 1;
  std::printf("%s\n", noshare_metrics->Summary().c_str());

  // LifeRaft: data-driven batching at a few alpha settings.
  for (double alpha : {1.0, 0.25, 0.0}) {
    sched::LifeRaftConfig sched_config;
    sched_config.alpha = alpha;
    auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
        (*catalog)->store(), storage::DiskModel(ScaledDisk()), sched_config);
    sim::EngineConfig config;
    config.disk = ScaledDisk();
    sim::SimEngine engine(catalog->get(), std::move(scheduler), config);
    auto metrics = engine.Run(*trace, arrivals);
    if (!metrics.ok()) return 1;
    std::printf("%s\n", metrics->Summary().c_str());
  }

  std::printf(
      "\nLifeRaft shares each bucket read across every pending query that\n"
      "needs it; NoShare re-reads. The throughput gap is the paper's\n"
      "headline result (Fig 7a).\n");
  return 0;
}
