// Quickstart: build an archive, submit cross-match queries, process them
// in data-driven batches, and read the results.
//
//   $ ./quickstart
//
// Walks the whole public API surface in ~100 lines: catalog construction,
// query submission, batch processing with the aged workload throughput
// scheduler, and the per-query completions/matches that come back.

#include <cstdio>

#include "core/liferaft.h"
#include "util/random.h"
#include "workload/catalog_gen.h"

using namespace liferaft;

int main() {
  // 1. Generate a synthetic sky catalog (the archive's fact table) and
  //    build the LifeRaft system over it: equal-count HTM buckets, B+tree
  //    spatial index, LRU bucket cache, scheduler.
  workload::CatalogGenConfig gen;
  gen.num_objects = 200'000;
  gen.seed = 2024;
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) {
    std::fprintf(stderr, "catalog: %s\n", objects.status().ToString().c_str());
    return 1;
  }

  core::LifeRaftOptions options;
  options.objects_per_bucket = 1000;  // ~200 buckets
  options.cache_capacity = 20;        // paper's cache size
  options.alpha = 0.25;               // mild age bias
  auto system = core::LifeRaft::Create(std::move(*objects), options);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }
  auto& raft = **system;
  std::printf("archive ready: %zu objects in %zu buckets\n",
              raft.catalog().num_objects(), raft.catalog().num_buckets());

  // 2. Submit three cross-match queries over different sky regions. Each
  //    query ships a list of objects (e.g. intermediate results from
  //    another archive) to match within an error radius, plus a predicate.
  Rng rng(99);
  for (query::QueryId qid = 1; qid <= 3; ++qid) {
    query::CrossMatchQuery q;
    q.id = qid;
    q.label = "demo query " + std::to_string(qid);
    SkyPoint center{60.0 * static_cast<double>(qid), 15.0};
    for (int i = 0; i < 400; ++i) {
      SkyPoint p = workload::RandomPointInCap(&rng, center, 4.0);
      q.objects.push_back(query::MakeQueryObject(i, p, /*radius_arcsec=*/600));
    }
    q.predicate.max_mag = 22.0f;  // drop the faintest matches
    Status st = raft.Submit(q);
    if (!st.ok()) {
      std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("submitted 3 queries (%zu pending)\n", raft.pending_queries());

  // 3. Drain: the scheduler repeatedly picks the bucket with the highest
  //    aged workload throughput and cross-matches its whole queue in one
  //    pass. Queries sharing buckets share the I/O.
  size_t batches = 0;
  uint64_t matches = 0;
  auto completions = raft.Drain([&](const core::BatchOutcome& batch) {
    ++batches;
    matches += batch.matches.size();
  });
  if (!completions.ok()) {
    std::fprintf(stderr, "drain: %s\n",
                 completions.status().ToString().c_str());
    return 1;
  }

  // 4. Results.
  std::printf("processed %zu bucket batches, %llu matches, "
              "virtual time %.2f s\n",
              batches, static_cast<unsigned long long>(matches),
              raft.now_ms() / 1000.0);
  for (const auto& done : *completions) {
    std::printf("  query %llu: response %.2f s\n",
                static_cast<unsigned long long>(done.id),
                done.ResponseMs() / 1000.0);
  }
  std::printf("cache: %.0f%% hit rate over %llu lookups\n",
              raft.cache_stats().HitRate() * 100.0,
              static_cast<unsigned long long>(raft.cache_stats().hits +
                                              raft.cache_stats().misses));
  return 0;
}
