// Federated cross-match: three archives ("twomass", "sdss", "usnob") each
// running their own LifeRaft instance, executing a SkyQuery-style serial
// left-deep plan in which each site's matches ship to the next site as its
// query objects.
//
//   $ ./federation_demo

#include <cstdio>

#include "federation/federation.h"
#include "util/random.h"
#include "workload/catalog_gen.h"

using namespace liferaft;

namespace {

// All surveys observe the same sky: shared true star positions plus
// per-site ~1 arcsec astrometric jitter. Cross-matching recovers the
// common objects.
std::vector<SkyPoint> TrueStars(size_t n) {
  Rng rng(515);
  std::vector<SkyPoint> stars;
  stars.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    stars.push_back(workload::RandomPointInCap(&rng, {180.0, 30.0}, 12.0));
  }
  return stars;
}

std::unique_ptr<core::LifeRaft> MakeSite(const std::vector<SkyPoint>& stars,
                                         uint64_t seed,
                                         double detection_rate) {
  Rng rng(seed);
  std::vector<storage::CatalogObject> objects;
  const double jitter = 1.0 / kArcsecPerDeg;
  for (size_t i = 0; i < stars.size(); ++i) {
    if (!rng.Bernoulli(detection_rate)) continue;  // not every survey sees
    SkyPoint p = stars[i];                         // every star
    p.ra_deg += rng.Normal(0, jitter);
    p.dec_deg += rng.Normal(0, jitter);
    objects.push_back(storage::MakeObject(
        objects.size(), p, static_cast<float>(rng.UniformDouble(14, 22)),
        static_cast<float>(rng.Normal(0.6, 0.4))));
  }
  core::LifeRaftOptions options;
  options.objects_per_bucket = 500;
  auto system = core::LifeRaft::Create(std::move(objects), options);
  if (!system.ok()) {
    std::fprintf(stderr, "site build failed: %s\n",
                 system.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*system);
}

}  // namespace

int main() {
  auto stars = TrueStars(30'000);

  federation::Federation fed;
  if (!fed.AddSite("twomass", MakeSite(stars, 101, 0.95)).ok()) return 1;
  if (!fed.AddSite("sdss", MakeSite(stars, 102, 0.90)).ok()) return 1;
  if (!fed.AddSite("usnob", MakeSite(stars, 103, 0.85)).ok()) return 1;
  std::printf("federation ready: %zu sites over %zu shared stars\n\n",
              fed.num_sites(), stars.size());

  // Cross-match 500 target positions through all three archives.
  federation::CrossMatchPlan plan;
  plan.query_id = 1;
  plan.archives = {"twomass", "sdss", "usnob"};
  plan.radius_arcsec = 5.0;
  for (int i = 0; i < 500; ++i) {
    plan.seed_objects.push_back(
        query::MakeQueryObject(i, stars[static_cast<size_t>(i) * 7], 5.0));
  }

  auto result = fed.ExecutePlan(plan);
  if (!result.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("serial left-deep cross-match %s:\n", "twomass x sdss x usnob");
  for (size_t hop = 0; hop < result->objects_per_hop.size(); ++hop) {
    std::printf("  hop %zu (%s): %zu objects shipped in\n", hop + 1,
                plan.archives[hop].c_str(), result->objects_per_hop[hop]);
  }
  std::printf("  survivors of all three archives: %zu of %zu seeds\n",
              result->survivors.size(), plan.seed_objects.size());
  std::printf("  total modeled latency: %.2f s (processing + shipping)\n",
              result->total_latency_ms / 1000.0);
  std::printf(
      "\neach site batches the sub-queries it receives independently\n"
      "(paper §6: federation sites schedule autonomously).\n");
  return 0;
}
